package tpi

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/testcount"
)

func TestPlanCutsDPMatchesExhaustive(t *testing.T) {
	// The headline optimality claim: on fanout-free circuits the DP finds
	// a placement achieving the true minimax optimum for every budget.
	for seed := int64(0); seed < 12; seed++ {
		c := gen.RandomTree(seed, 10, gen.TreeOptions{})
		for k := 1; k <= 3; k++ {
			dp, err := PlanCutsDP(c, k)
			if err != nil {
				t.Fatalf("seed %d k %d: dp: %v", seed, k, err)
			}
			ex, err := PlanCutsExhaustive(c, k)
			if err != nil {
				t.Fatalf("seed %d k %d: exhaustive: %v", seed, k, err)
			}
			if dp.MaxCost != ex.MaxCost {
				t.Errorf("seed %d k %d: DP cost %d != exhaustive %d (DP cuts %v, EX cuts %v)",
					seed, k, dp.MaxCost, ex.MaxCost, dp.Cuts, ex.Cuts)
			}
			if len(dp.Cuts) > k {
				t.Errorf("seed %d k %d: DP used %d cuts", seed, k, len(dp.Cuts))
			}
			if err := VerifyCutPlan(c, dp); err != nil {
				t.Errorf("seed %d k %d: %v", seed, k, err)
			}
		}
	}
}

func TestPlanCutsDPLargerBudgets(t *testing.T) {
	// Deeper budget sweep on one tree, verified against exhaustive.
	c := gen.RandomTree(3, 12, gen.TreeOptions{})
	for k := 1; k <= 4; k++ {
		dp, err := PlanCutsDP(c, k)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := PlanCutsExhaustive(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if dp.MaxCost != ex.MaxCost {
			t.Errorf("k=%d: DP %d != exhaustive %d", k, dp.MaxCost, ex.MaxCost)
		}
	}
}

func TestPlanCutsDPMonotoneInBudget(t *testing.T) {
	c := gen.RandomTree(7, 40, gen.TreeOptions{})
	prev := 1 << 30
	for k := 0; k <= 10; k++ {
		dp, err := PlanCutsDP(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if dp.MaxCost > prev {
			t.Errorf("k=%d: cost %d increased from %d", k, dp.MaxCost, prev)
		}
		if err := VerifyCutPlan(c, dp); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		prev = dp.MaxCost
	}
}

func TestPlanCutsDPNeverWorseThanGreedyOrRandom(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := gen.RandomTree(seed, 60, gen.TreeOptions{})
		for _, k := range []int{2, 5} {
			dp, err := PlanCutsDP(c, k)
			if err != nil {
				t.Fatal(err)
			}
			gr, err := PlanCutsGreedy(c, k)
			if err != nil {
				t.Fatal(err)
			}
			rnd, err := PlanCutsRandom(c, k, seed+100)
			if err != nil {
				t.Fatal(err)
			}
			if dp.MaxCost > gr.MaxCost {
				t.Errorf("seed %d k %d: DP %d worse than greedy %d", seed, k, dp.MaxCost, gr.MaxCost)
			}
			if dp.MaxCost > rnd.MaxCost {
				t.Errorf("seed %d k %d: DP %d worse than random %d", seed, k, dp.MaxCost, rnd.MaxCost)
			}
			if err := VerifyCutPlan(c, gr); err != nil {
				t.Errorf("greedy plan inconsistent: %v", err)
			}
			if err := VerifyCutPlan(c, rnd); err != nil {
				t.Errorf("random plan inconsistent: %v", err)
			}
		}
	}
}

func TestPlanCutsZeroBudget(t *testing.T) {
	c := gen.RandomTree(1, 20, gen.TreeOptions{})
	dp, err := PlanCutsDP(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dp.MaxCost != dp.BaseCost || len(dp.Cuts) != 0 {
		t.Errorf("zero budget plan: %+v", dp)
	}
}

func TestPlanCutsNegativeBudget(t *testing.T) {
	c := gen.RandomTree(1, 10, gen.TreeOptions{})
	if _, err := PlanCutsDP(c, -1); err != ErrBudgetNegative {
		t.Errorf("expected ErrBudgetNegative, got %v", err)
	}
}

func TestPlanCutsRejectsFanout(t *testing.T) {
	if _, err := PlanCutsDP(gen.C17(), 2); err == nil {
		t.Error("expected error on reconvergent circuit")
	}
}

func TestPlanCutsKnownExample(t *testing.T) {
	// AND(AND(a,b), AND(c,d)): base 5 tests. One cut: best is either inner
	// AND -> max 4. Two cuts: both inner ANDs -> 3.
	b := netlist.NewBuilder("two")
	a := b.Input("a")
	x := b.Input("b")
	cc := b.Input("c")
	d := b.Input("d")
	g1 := b.AndGate("g1", a, x)
	g2 := b.AndGate("g2", cc, d)
	root := b.AndGate("root", g1, g2)
	b.MarkOutput(root)
	c := b.MustBuild()

	dp1, err := PlanCutsDP(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dp1.BaseCost != 5 || dp1.MaxCost != 4 {
		t.Errorf("k=1: base %d max %d, want 5/4", dp1.BaseCost, dp1.MaxCost)
	}
	dp2, err := PlanCutsDP(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dp2.MaxCost != 3 {
		t.Errorf("k=2: max %d, want 3", dp2.MaxCost)
	}
	if len(dp2.Cuts) != 2 || dp2.Cuts[0] != g1 || dp2.Cuts[1] != g2 {
		t.Errorf("k=2 cuts = %v, want [%d %d]", dp2.Cuts, g1, g2)
	}
}

func TestPlanCutsWideAndCone(t *testing.T) {
	// A width-16 balanced AND cone needs 17 tests; cutting the two
	// half-cone roots leaves segments of (9, and upper AND(leaf,leaf)=3):
	// max 9. The DP must find cost <= 9 with k=2 and the true optimum.
	c := gen.AndCone(16)
	dp, err := PlanCutsDP(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dp.BaseCost != 17 {
		t.Fatalf("base = %d, want 17", dp.BaseCost)
	}
	if dp.MaxCost > 9 {
		t.Errorf("k=2 cost %d, want <= 9", dp.MaxCost)
	}
	ex, err := PlanCutsExhaustive(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dp.MaxCost != ex.MaxCost {
		t.Errorf("DP %d != exhaustive %d", dp.MaxCost, ex.MaxCost)
	}
}

func TestPlanCutsMultiOutputForest(t *testing.T) {
	// Two independent cones share the budget; the DP must allocate cuts
	// to the tree that dominates the max.
	b := netlist.NewBuilder("forest")
	mk := func(prefix string, width int) {
		var ins []int
		for i := 0; i < width; i++ {
			ins = append(ins, b.Input(prefix+string(rune('a'+i))))
		}
		cur := ins
		for len(cur) > 1 {
			var next []int
			for i := 0; i+1 < len(cur); i += 2 {
				next = append(next, b.AndGate("", cur[i], cur[i+1]))
			}
			if len(cur)%2 == 1 {
				next = append(next, cur[len(cur)-1])
			}
			cur = next
		}
		b.MarkOutput(cur[0])
	}
	mk("p", 8) // 9 tests
	mk("q", 4) // 5 tests
	c := b.MustBuild()
	ct, err := testcount.Compute(c)
	if err != nil {
		t.Fatal(err)
	}
	if ct.CircuitTests() != 9 {
		t.Fatalf("forest base = %d, want 9", ct.CircuitTests())
	}
	dp, err := PlanCutsDP(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One cut in the 8-wide cone can bring it to max(5, upper): cutting a
	// 4-wide subtree: lower 5, upper AND(leaf, other-half=5... ) — the
	// optimum must at least beat 9 and match exhaustive.
	ex, err := PlanCutsExhaustive(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dp.MaxCost != ex.MaxCost {
		t.Errorf("DP %d != exhaustive %d", dp.MaxCost, ex.MaxCost)
	}
	if dp.MaxCost >= 9 {
		t.Errorf("one cut should improve the 8-wide cone: cost %d", dp.MaxCost)
	}
	// All cuts must land in the p-cone (the q-cone is not the max).
	for _, cut := range dp.Cuts {
		name := c.GateName(cut)
		_ = name // cuts are anonymous gates; verify via segment analysis instead
	}
	if err := VerifyCutPlan(c, dp); err != nil {
		t.Error(err)
	}
}

func TestGreedySuboptimalExampleExists(t *testing.T) {
	// Over a batch of random trees, greedy must never beat the DP, and on
	// at least one instance it should be strictly worse — the gap E2
	// reports. (If greedy were always optimal the experiment would be
	// vacuous; this guards the benchmark's premise.)
	strictly := 0
	for seed := int64(0); seed < 40; seed++ {
		c := gen.RandomTree(seed, 24, gen.TreeOptions{MaxFanin: 3})
		dp, err := PlanCutsDP(c, 3)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := PlanCutsGreedy(c, 3)
		if err != nil {
			t.Fatal(err)
		}
		if gr.MaxCost < dp.MaxCost {
			t.Fatalf("seed %d: greedy %d beat DP %d — DP is not optimal", seed, gr.MaxCost, dp.MaxCost)
		}
		if gr.MaxCost > dp.MaxCost {
			strictly++
		}
	}
	if strictly == 0 {
		t.Log("greedy matched DP on all 40 seeds; gap may appear only on larger instances")
	}
}

func TestCutPlanTestPointsRoundTrip(t *testing.T) {
	c := gen.RandomTree(5, 16, gen.TreeOptions{})
	dp, err := PlanCutsDP(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts := dp.TestPoints()
	if len(pts) != len(dp.Cuts) {
		t.Fatalf("points %d != cuts %d", len(pts), len(dp.Cuts))
	}
	for _, p := range pts {
		if p.Kind != netlist.FullCut {
			t.Errorf("kind = %v, want FullCut", p.Kind)
		}
	}
	if _, err := c.InsertTestPoints(pts); err != nil {
		t.Fatalf("insertion failed: %v", err)
	}
}
