package tpi

import (
	"context"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// Cancellation support for the planners. The DP cores are recursive
// (regionDP.dp) or deeply nested (cutDP.computeNode inside a binary
// search), so rather than threading an error return through every
// recurrence, cancellation aborts via a private panic value that the
// exported *Context wrappers recover into a plain ctx.Err() return. The
// panic value never escapes the package.
type ctxAbort struct{ err error }

// pollDone panics with ctxAbort when the done channel is readable. A nil
// done channel (context.Background and friends) makes the select arm
// never ready, so the non-cancellable path pays one cheap select.
func pollDone(ctx context.Context, done <-chan struct{}) {
	select {
	case <-done:
		panic(ctxAbort{ctx.Err()})
	default:
	}
}

// recoverCtx converts a ctxAbort panic into *err; any other panic is
// re-raised. Use as `defer recoverCtx(&err)` in exported wrappers.
func recoverCtx(err *error) {
	if r := recover(); r != nil {
		a, ok := r.(ctxAbort)
		if !ok {
			panic(r)
		}
		*err = a.err
	}
}

// PlanCutsDPContext is PlanCutsDP with cancellation: the context is
// polled once per node of each feasibility DP, so an expired or
// cancelled context aborts the plan within one node's Pareto merge. It
// returns nil and ctx.Err() when cancelled.
func PlanCutsDPContext(ctx context.Context, c *netlist.Circuit, k int) (plan *CutPlan, err error) {
	return PlanCutsDPWithCostContext(ctx, c, k, UnitCost)
}

// PlanCutsDPWithCostContext is the cancellable weighted planner.
func PlanCutsDPWithCostContext(ctx context.Context, c *netlist.Circuit, budget int, cost CostFunc) (plan *CutPlan, err error) {
	defer recoverCtx(&err)
	return planCutsDPWithCost(ctx, c, budget, cost)
}

// PlanObservationPointsDPContext is PlanObservationPointsDP with
// cancellation: the context is polled once per tree-DP state, so an
// expired or cancelled context aborts the plan within one subtree
// knapsack. It returns nil and ctx.Err() when cancelled.
func PlanObservationPointsDPContext(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, k int, dth float64, opts OPOptions) (plan *OPPlan, err error) {
	defer recoverCtx(&err)
	return planObservationPointsDP(ctx, c, faults, k, dth, opts)
}

// PlanControlPointsGreedyContext is PlanControlPointsGreedy with
// cancellation: the context is polled once per candidate circuit
// evaluation (the unit of work that dominates the greedy loop). It
// returns nil and ctx.Err() when cancelled.
func PlanControlPointsGreedyContext(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, k int, dth float64, opts CPOptions) (plan *CPPlan, err error) {
	defer recoverCtx(&err)
	return planControlPointsGreedy(ctx, c, faults, k, dth, opts)
}

// PlanHybridContext is PlanHybrid with cancellation threaded through
// both planning stages and the static pre-prune.
func PlanHybridContext(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, nCP, nOP int, dth float64, cpOpts CPOptions, opOpts OPOptions) (plan *HybridPlan, err error) {
	defer recoverCtx(&err)
	return planHybrid(ctx, c, faults, nCP, nOP, dth, cpOpts, opOpts)
}
