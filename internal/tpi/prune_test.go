package tpi

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// redundantCircuit embeds one statically redundant fault: n1 s-a-0 in
// n1 = AND(a,b); z = OR(n1, a) (exciting it forces the dominator's side
// input a to the OR's controlling value).
func redundantCircuit() *netlist.Circuit {
	b := netlist.NewBuilder("red")
	a := b.Input("a")
	x := b.Input("b")
	n1 := b.AndGate("n1", a, x)
	z := b.OrGate("z", n1, a)
	b.MarkOutput(z)
	return b.MustBuild()
}

func TestPruneFaultsDropsRedundant(t *testing.T) {
	c := redundantCircuit()
	all := fault.Universe(c)
	kept, pruned := PruneFaults(c, all)
	if pruned == 0 {
		t.Fatalf("expected redundant faults to be pruned from %d", len(all))
	}
	if len(kept)+pruned != len(all) {
		t.Errorf("kept %d + pruned %d != universe %d", len(kept), pruned, len(all))
	}
	n1, _ := c.GateByName("n1")
	for _, f := range kept {
		if f == (fault.Fault{Gate: n1, Pin: -1, Stuck: false}) {
			t.Errorf("n1 s-a-0 survived the prune")
		}
	}
}

func TestPruneFaultsNoopOnC17(t *testing.T) {
	c := gen.C17()
	all := fault.Universe(c)
	kept, pruned := PruneFaults(c, all)
	if pruned != 0 || len(kept) != len(all) {
		t.Errorf("c17 has no redundant faults; pruned %d of %d", pruned, len(all))
	}
}

func TestPlanHybridReportsPrunedFaults(t *testing.T) {
	c := redundantCircuit()
	all := fault.Universe(c)
	h, err := PlanHybrid(c, all, 1, 1, 1.0/64, CPOptions{}, OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h.PrunedFaults == 0 {
		t.Errorf("PlanHybrid must report the statically pruned faults")
	}
	if h.Observe.TotalFaults != len(all)-h.PrunedFaults {
		t.Errorf("observation stage targeted %d faults, want %d", h.Observe.TotalFaults, len(all)-h.PrunedFaults)
	}
}

// TestDPSkipsFaultFreeRegions pins the pre-prune contract: planning
// against a fault list confined to one cone must not place points in
// fault-free regions, and must agree with the un-skipped model.
func TestDPSkipsFaultFreeRegions(t *testing.T) {
	c := gen.RippleCarryAdder(4)
	all := fault.Universe(c)
	some := all[:6] // faults on the first few gates only
	plan, err := PlanObservationPointsDP(c, some, 2, 1.0/16, OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ModelCoveredCount(c, some, plan.Points, 1.0/16, OPOptions{}); got != plan.CoveredAfter {
		t.Errorf("reconstructed placement covers %d, plan claims %d", got, plan.CoveredAfter)
	}
	region := c.RegionOf()
	hasFault := map[int]bool{}
	for _, f := range some {
		hasFault[region[f.Gate]] = true
	}
	for _, p := range plan.Points {
		if !hasFault[region[p]] {
			t.Errorf("observation point %d placed in a fault-free region", p)
		}
	}
}
