package tpi

import (
	"sort"

	"repro/internal/netlist"
	"repro/internal/testcount"
)

// PlanCutsThreshold is the fast near-optimal P1 planner: it binary-
// searches the achievable minimax test count like the DP, but decides
// feasibility with a single bottom-up greedy pass — at each node whose
// open-segment cost exceeds the threshold, the child whose replacement by
// a cut reduces the cost most is cut, repeatedly, until the node fits.
// One pass is O(n · maxFanin²) against the DP's Pareto sets, at the
// price of optimality: the plan is always valid and usually optimal, but
// can exceed the DP on adversarial trees (quantified in E8).
func PlanCutsThreshold(c *netlist.Circuit, k int) (*CutPlan, error) {
	if k < 0 {
		return nil, ErrBudgetNegative
	}
	base, err := testcount.Compute(c)
	if err != nil {
		return nil, err
	}
	plan := &CutPlan{BaseCost: base.CircuitTests()}
	if k == 0 {
		plan.MaxCost = plan.BaseCost
		return plan, nil
	}
	lo, hi := 2, plan.BaseCost
	bestT := hi
	var bestCuts []int
	for lo <= hi {
		mid := (lo + hi) / 2
		cuts, states, ok := thresholdFeasible(c, mid, k)
		plan.StatesVisited += states
		if ok {
			bestT = mid
			bestCuts = cuts
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	plan.Cuts = bestCuts
	sort.Ints(plan.Cuts)
	// The greedy pass may over- or under-shoot the threshold's nominal
	// value; report the actual achieved cost.
	an, err := testcount.AnalyzeCuts(c, plan.Cuts)
	if err != nil {
		return nil, err
	}
	plan.MaxCost = an.MaxCost
	if plan.MaxCost > bestT {
		// Never expected (the pass enforces <= T); stay honest anyway.
		bestT = plan.MaxCost
	}
	if plan.MaxCost >= plan.BaseCost {
		plan.Cuts = nil
		plan.MaxCost = plan.BaseCost
	}
	return plan, nil
}

// thresholdFeasible runs the bottom-up greedy pass at threshold T and
// reports the cut set if at most k cuts suffice.
func thresholdFeasible(c *netlist.Circuit, T, k int) (cuts []int, states int64, ok bool) {
	t0 := make([]int, c.NumGates())
	t1 := make([]int, c.NumGates())
	isCut := make([]bool, c.NumGates())
	childCounts := func(f int) (int, int) {
		if isCut[f] {
			return 1, 1
		}
		return t0[f], t1[f]
	}
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			t0[id], t1[id] = 1, 1
			continue
		}
		sumZero, swap := aggRules(g.Type)
		eval := func() (int, int) {
			var a, b int // a sums, b maxes
			for _, f := range g.Fanin {
				c0, c1 := childCounts(f)
				if sumZero {
					a += c0
					b = maxInt(b, c1)
				} else {
					a += c1
					b = maxInt(b, c0)
				}
			}
			var v0, v1 int
			if sumZero {
				v0, v1 = a, b
			} else {
				v1, v0 = a, b
			}
			if swap {
				v0, v1 = v1, v0
			}
			return v0, v1
		}
		v0, v1 := eval()
		states++
		// Cut children greedily while over threshold.
		for v0+v1 > T {
			bestChild, bestCost := -1, v0+v1
			for _, f := range g.Fanin {
				if isCut[f] || c.Type(f) == netlist.Input {
					continue
				}
				isCut[f] = true
				w0, w1 := eval()
				isCut[f] = false
				states++
				if w0+w1 < bestCost {
					bestCost, bestChild = w0+w1, f
				}
			}
			if bestChild < 0 {
				return nil, states, false // no cut reduces this node
			}
			// The cut-off child becomes a closed segment; it satisfied
			// <= T when it was processed (its own subtree was fixed up
			// then), so only the local bookkeeping changes.
			isCut[bestChild] = true
			cuts = append(cuts, bestChild)
			if len(cuts) > k {
				return nil, states, false
			}
			v0, v1 = eval()
		}
		t0[id], t1[id] = v0, v1
	}
	for _, o := range c.Outputs() {
		if t0[o]+t1[o] > T {
			return nil, states, false
		}
	}
	return cuts, states, true
}
