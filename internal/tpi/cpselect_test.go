package tpi

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

func TestControlPointsFixExcitationLimitedFaults(t *testing.T) {
	// A 16-wide AND cone: output s-a-0 needs all-ones (p = 2^-16).
	// Observation points cannot help; an OR-type (force-1) control point
	// in the cone must.
	c := gen.AndCone(16)
	faults := fault.CollapsedUniverse(c)
	const dth = 1.0 / 512
	cp, err := PlanControlPointsGreedy(c, faults, 2, dth, CPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cp.CoveredAfter <= cp.CoveredBefore {
		t.Fatalf("control points did not improve modelled coverage: %d -> %d", cp.CoveredBefore, cp.CoveredAfter)
	}
	// The selected points must include at least one Control1 (OR-type):
	// the cone needs its lines pulled toward 1.
	hasControl1 := false
	for _, p := range cp.Points {
		if p.Kind == netlist.Control1 {
			hasControl1 = true
		}
	}
	if !hasControl1 {
		t.Errorf("expected an OR-type control point in an AND cone, got %v", cp.Points)
	}
}

func TestControlPointsRealCoverageUplift(t *testing.T) {
	// End-to-end on the AND cone: with control points inserted and 4096
	// patterns, real fault coverage must beat the unmodified circuit.
	c := gen.AndCone(16)
	faults := fault.CollapsedUniverse(c)
	cp, err := PlanControlPointsGreedy(c, faults, 2, 1.0/512, CPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := cp.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	before, err := fsim.Run(c, faults, pattern.NewLFSR(9), fsim.Options{MaxPatterns: 4096, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	after, err := fsim.Run(mod, faults, pattern.NewLFSR(9), fsim.Options{MaxPatterns: 4096, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if after.Coverage() <= before.Coverage() {
		t.Errorf("real coverage did not improve: %.4f -> %.4f", before.Coverage(), after.Coverage())
	}
}

func TestControlPointsStopWhenNoGain(t *testing.T) {
	// A parity tree is perfectly random-pattern testable: every fault has
	// detection probability 0.5. No control point can add coverage at a
	// modest threshold, so the planner must stop early.
	c := gen.ParityTree(8)
	faults := fault.CollapsedUniverse(c)
	cp, err := PlanControlPointsGreedy(c, faults, 4, 0.1, CPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Points) != 0 {
		t.Errorf("planner inserted %d pointless control points", len(cp.Points))
	}
	if cp.CoveredBefore != len(faults) {
		t.Errorf("parity tree baseline coverage %d/%d", cp.CoveredBefore, len(faults))
	}
}

func TestControlPointsNegativeBudget(t *testing.T) {
	c := gen.C17()
	if _, err := PlanControlPointsGreedy(c, fault.CollapsedUniverse(c), -1, 0.1, CPOptions{}); err != ErrBudgetNegative {
		t.Errorf("expected ErrBudgetNegative, got %v", err)
	}
}

func TestCPPlanApplyPreservesFunction(t *testing.T) {
	// Applying a CP plan and driving all test inputs passive must leave
	// the original outputs intact (checked over exhaustive vectors).
	c := gen.AndCone(8)
	faults := fault.CollapsedUniverse(c)
	cp, err := PlanControlPointsGreedy(c, faults, 2, 1.0/64, CPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Points) == 0 {
		t.Skip("no control points selected")
	}
	mod, err := cp.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	// Passive values: Control0 test input = 1, Control1 test input = 0.
	passive := make(map[string]bool)
	for i := c.NumInputs(); i < mod.NumInputs(); i++ {
		// Inserted test inputs appear after the originals; their passive
		// value depends on the gate they feed (AND -> 1, OR -> 0).
		in := mod.Inputs()[i]
		consumer := mod.Fanout(in)[0]
		passive[mod.GateName(in)] = mod.Type(consumer) == netlist.And
	}
	for v := 0; v < 256; v++ {
		origVals := evalBool(c, func(i int) bool { return v>>uint(i)&1 == 1 })
		modVals := evalBool(mod, func(i int) bool {
			if i < c.NumInputs() {
				return v>>uint(i)&1 == 1
			}
			return passive[mod.GateName(mod.Inputs()[i])]
		})
		for oi, o := range c.Outputs() {
			if origVals[o] != modVals[mod.Outputs()[oi]] {
				t.Fatalf("vector %d: output %d differs with passive control inputs", v, oi)
			}
		}
	}
}

func evalBool(c *netlist.Circuit, assign func(idx int) bool) []bool {
	vals := make([]bool, c.NumGates())
	for i, in := range c.Inputs() {
		vals[in] = assign(i)
	}
	buf := make([]bool, 0, 8)
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		buf = buf[:0]
		for _, f := range g.Fanin {
			buf = append(buf, vals[f])
		}
		vals[id] = g.Type.Eval(buf)
	}
	return vals
}

func TestHybridPlanOnRPResistant(t *testing.T) {
	// The full flow on a random-pattern-resistant circuit: control points
	// for excitation, observation points for propagation. Real coverage
	// at 8k patterns must improve strictly.
	c := gen.RPResistant(3, 3, 12, 50)
	faults := fault.CollapsedUniverse(c)
	h, err := PlanHybrid(c, faults, 3, 3, 1.0/1024, CPOptions{}, OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h.AllPoints() == 0 {
		t.Skip("no test points selected on this instance")
	}
	before, err := fsim.Run(c, faults, pattern.NewLFSR(11), fsim.Options{MaxPatterns: 8192, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	after, err := fsim.Run(h.Modified, faults, pattern.NewLFSR(11), fsim.Options{MaxPatterns: 8192, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if after.Coverage() <= before.Coverage() {
		t.Errorf("hybrid plan did not improve coverage: %.4f -> %.4f (%d CPs, %d OPs)",
			before.Coverage(), after.Coverage(), len(h.Control.Points), len(h.Observe.Points))
	}
}
