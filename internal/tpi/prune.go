package tpi

import (
	"repro/internal/fault"
	"repro/internal/implic"
	"repro/internal/netlist"
)

// pruneGateLimit bounds the circuit size for the static pre-prune; the
// implication engine's learning sweep is roughly quadratic in gate
// count, while the planners themselves stay near-linear.
const pruneGateLimit = 4096

// PruneFaults removes the faults that the static implication engine
// (internal/implic) proves untestable: no test point placement can ever
// detect them, so scoring candidate sites against them only dilutes the
// planners' coverage model. Returns the kept faults and how many were
// pruned. Circuits above the internal gate limit are returned unchanged.
func PruneFaults(c *netlist.Circuit, faults []fault.Fault) ([]fault.Fault, int) {
	if c.NumGates() > pruneGateLimit {
		return faults, 0
	}
	red := implic.New(c, implic.Options{}).RedundantSet()
	if len(red) == 0 {
		return faults, 0
	}
	kept := make([]fault.Fault, 0, len(faults))
	for _, f := range faults {
		if !red[f] {
			kept = append(kept, f)
		}
	}
	return kept, len(faults) - len(kept)
}
