package atpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
)

// generateAllocs measures steady-state allocations of one Generate call.
func generateAllocs(t *testing.T, width int) float64 {
	t.Helper()
	c := gen.ParityTree(width)
	f := fault.Universe(c)[0]
	return testing.AllocsPerRun(20, func() {
		if _, err := Generate(c, f, Options{}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestGenerateAllocsBounded pins the absolute allocation budget of one
// PODEM run: engine setup plus the result, nothing per-decision. The
// imply scratch (engine.inG/inB) used to be allocated on every imply
// call — once per search decision and backtrack — which on a parity
// tree (every input must be assigned) costs 2 allocations per level and
// blows well past this bound. Codelint rule G007 flags the shape
// statically; this test pins the fix behaviorally.
func TestGenerateAllocsBounded(t *testing.T) {
	if got := generateAllocs(t, 16); got > 20 {
		t.Fatalf("Generate on parity-16 costs %.1f allocs/op, want <= 20 (per-decision allocation crept back in)", got)
	}
}

// TestGenerateAllocsDepthIndependent pins the sharper invariant: the
// allocation count must not scale with search depth. Parity trees force
// PODEM to assign every input, so quadrupling the width quadruples the
// imply count; only the O(1) setup (result vector, PI assignment) may
// grow, and only by a few slots.
func TestGenerateAllocsDepthIndependent(t *testing.T) {
	shallow := generateAllocs(t, 4)
	deep := generateAllocs(t, 16)
	if deep-shallow > 4 {
		t.Fatalf("Generate allocs grew with search depth: parity-4 %.1f vs parity-16 %.1f (want delta <= 4)",
			shallow, deep)
	}
}
