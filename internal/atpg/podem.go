// Package atpg implements a PODEM automatic test pattern generator over
// five-valued logic (0, 1, X, D, D̄). It serves three roles in the
// reproduction: generating deterministic test sets whose sizes validate
// the Hayes–Friedman counts (E1), proving faults redundant, and producing
// top-up vectors for faults that random patterns miss.
package atpg

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/implic"
	"repro/internal/netlist"
	"repro/internal/progress"
)

// Value is a three-valued logic level for one circuit copy (good or
// faulty).
type Value uint8

// Three-valued levels. The five-valued composite (0,1,X,D,D̄) is the pair
// (good, faulty): D = (One, Zero), D̄ = (Zero, One).
const (
	X Value = iota
	Zero
	One
)

// String returns "0", "1" or "X".
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	}
	return "X"
}

func (v Value) invert() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// Status classifies the outcome of a PODEM run for one fault.
type Status uint8

// PODEM outcomes.
const (
	// Detected means a test vector was found.
	Detected Status = iota
	// Redundant means the search space was exhausted; no test exists.
	Redundant
	// Aborted means the backtrack limit was hit before a conclusion.
	Aborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Redundant:
		return "redundant"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Options configures the generator.
type Options struct {
	// BacktrackLimit bounds the search per fault (0 = 20000).
	BacktrackLimit int
	// Learn optionally supplies a static implication engine built on the
	// same circuit (internal/implic). When set, the search prunes
	// decision subtrees in which the learned implications prove that the
	// fault can no longer be excited or its effect can no longer reach
	// an output. Pruning only cuts subtrees that contain no test, so the
	// result status never changes and the backtrack count never exceeds
	// the unassisted search.
	Learn *implic.Engine
}

// Result reports one PODEM run.
type Result struct {
	Status Status
	// Vector is the generated test (one bool per primary input, don't
	// cares filled with false) when Status == Detected.
	Vector []bool
	// Backtracks counts decisions undone during the search.
	Backtracks int
}

// engine holds the per-run state.
type engine struct {
	c      *netlist.Circuit
	f      fault.Fault
	good   []Value
	bad    []Value
	assign []Value // PI decisions, indexed by input position
	limit  int
	backs  int

	// Learned-implication pruning state (nil/empty without Options.Learn).
	learn      *implic.Engine
	cone       []bool  // fanout cone of f.Gate: signals that may carry the fault effect
	implied    []Value // fault-free values forced by the current assignment
	impTouched []int   // signals set in implied, for O(touched) reset

	// Fan-in scratch reused across imply calls: imply runs once per
	// search decision and backtrack, so per-call allocation here is what
	// the allocs/op regression test (and golint G007) forbid.
	inG, inB []Value

	// done aborts the search when it becomes readable (nil = never);
	// ctxErr records ctx.Err() when that happened.
	ctx    context.Context
	done   <-chan struct{}
	ctxErr error
}

// Generate runs PODEM for a single stuck-at fault.
func Generate(c *netlist.Circuit, f fault.Fault, opts Options) (*Result, error) {
	return GenerateContext(context.Background(), c, f, opts)
}

// GenerateContext is Generate with cancellation: the context is polled
// once per decision of the search loop, so an expired or cancelled
// context stops the search within one imply/backtrace step. It returns
// nil and ctx.Err() when cancelled mid-search.
func GenerateContext(ctx context.Context, c *netlist.Circuit, f fault.Fault, opts Options) (*Result, error) {
	if f.Gate < 0 || f.Gate >= c.NumGates() {
		return nil, fmt.Errorf("atpg: fault %v: gate out of range", f)
	}
	if !f.IsStem() && f.Pin >= len(c.Fanin(f.Gate)) {
		return nil, fmt.Errorf("atpg: fault %v: pin out of range", f)
	}
	limit := opts.BacktrackLimit
	if limit <= 0 {
		limit = 20000
	}
	e := &engine{
		c:      c,
		f:      f,
		good:   make([]Value, c.NumGates()),
		bad:    make([]Value, c.NumGates()),
		assign: make([]Value, c.NumInputs()),
		limit:  limit,
		inG:    make([]Value, 0, 8),
		inB:    make([]Value, 0, 8),
		ctx:    ctx,
		done:   ctx.Done(),
	}
	if opts.Learn != nil && opts.Learn.Circuit() == c {
		e.learn = opts.Learn
		e.implied = make([]Value, c.NumGates())
		e.cone = make([]bool, c.NumGates())
		e.cone[f.Gate] = true
		for _, id := range c.TopoOrder() {
			if e.cone[id] {
				for _, g := range c.Fanout(id) {
					e.cone[g] = true
				}
			}
		}
	}
	ok, aborted := e.search()
	if e.ctxErr != nil {
		return nil, e.ctxErr
	}
	res := &Result{Backtracks: e.backs}
	switch {
	case ok:
		res.Status = Detected
		res.Vector = make([]bool, c.NumInputs())
		for i, v := range e.assign {
			res.Vector[i] = v == One
		}
	case aborted:
		res.Status = Aborted
	default:
		res.Status = Redundant
	}
	return res, nil
}

// imply re-simulates both circuit copies under the current PI assignment.
func (e *engine) imply() {
	c := e.c
	for i, in := range c.Inputs() {
		e.good[in] = e.assign[i]
		e.bad[in] = e.assign[i]
	}
	inG, inB := e.inG[:0], e.inB[:0]
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type != netlist.Input {
			inG = inG[:0]
			inB = inB[:0]
			for pin, fin := range g.Fanin {
				gv, bv := e.good[fin], e.bad[fin]
				if !e.f.IsStem() && e.f.Gate == id && e.f.Pin == pin {
					bv = stuckValue(e.f.Stuck)
				}
				inG = append(inG, gv)
				inB = append(inB, bv)
			}
			e.good[id] = eval3(g.Type, inG)
			e.bad[id] = eval3(g.Type, inB)
		}
		if e.f.IsStem() && e.f.Gate == id {
			e.bad[id] = stuckValue(e.f.Stuck)
		}
	}
	// Keep any growth, so the backing arrays are warm for the next call.
	e.inG, e.inB = inG, inB
}

func stuckValue(s bool) Value {
	if s {
		return One
	}
	return Zero
}

// eval3 evaluates a gate over three-valued inputs.
func eval3(t netlist.GateType, in []Value) Value {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return in[0].invert()
	case netlist.And, netlist.Nand:
		v := One
		for _, x := range in {
			if x == Zero {
				v = Zero
				break
			}
			if x == X {
				v = X
			}
		}
		if t == netlist.Nand {
			return v.invert()
		}
		return v
	case netlist.Or, netlist.Nor:
		v := Zero
		for _, x := range in {
			if x == One {
				v = One
				break
			}
			if x == X {
				v = X
			}
		}
		if t == netlist.Nor {
			return v.invert()
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := Zero
		for _, x := range in {
			if x == X {
				return X
			}
			if x == One {
				v = v.invert()
			}
		}
		if t == netlist.Xnor {
			return v.invert()
		}
		return v
	}
	return X
}

// detected reports whether a D/D̄ has reached a primary output.
func (e *engine) detected() bool {
	for _, o := range e.c.Outputs() {
		if e.good[o] != X && e.bad[o] != X && e.good[o] != e.bad[o] {
			return true
		}
	}
	return false
}

// faultSite returns the signal whose good value excites the fault: the
// driver line for a branch fault, the gate output for a stem fault.
func (e *engine) faultSite() int {
	if e.f.IsStem() {
		return e.f.Gate
	}
	return e.c.Fanin(e.f.Gate)[e.f.Pin]
}

// objective returns the next (signal, value) goal: excite the fault if
// not yet excited, otherwise advance the D-frontier.
func (e *engine) objective() (int, Value, bool) {
	site := e.faultSite()
	want := stuckValue(e.f.Stuck).invert()
	if e.good[site] == X {
		return site, want, true
	}
	// Fault must actually be excited: good value opposite the stuck value
	// at the site (for branch faults the divergence is inside the
	// consuming gate, checked via its inputs during imply).
	if e.good[site] != want {
		return 0, X, false
	}
	// D-frontier: gates whose output is still undetermined in at least
	// one copy (so the divergence can still surface) and whose inputs
	// carry a definite good/bad divergence.
	for _, id := range e.c.TopoOrder() {
		g := e.c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		if e.good[id] != X && e.bad[id] != X {
			continue
		}
		diverges := false
		for pin, fin := range g.Fanin {
			gv, bv := e.good[fin], e.bad[fin]
			if !e.f.IsStem() && e.f.Gate == id && e.f.Pin == pin {
				bv = stuckValue(e.f.Stuck)
			}
			if gv != X && bv != X && gv != bv {
				diverges = true
				break
			}
		}
		if !diverges {
			continue
		}
		// Objective: set an X input to the non-controlling value.
		cv, hasCtrl := g.Type.ControllingValue()
		for _, fin := range g.Fanin {
			if e.good[fin] == X {
				if hasCtrl {
					if cv {
						return fin, Zero, true
					}
					return fin, One, true
				}
				// XOR-likes propagate for any value; pick 0.
				return fin, Zero, true
			}
		}
	}
	return 0, X, false
}

// pruned consults the static implication engine and reports whether the
// current partial assignment provably admits no test, so the whole
// decision subtree can be abandoned without exploring it. Two sound
// cuts, both over fault-free (good-circuit) knowledge:
//
//   - excitation: the fault site is still X but every completion of the
//     assignment forces it to the stuck value;
//   - propagation: the fault is excited, the D-frontier is non-empty,
//     and every frontier gate has a fault-free side input (outside the
//     fault's fanout cone, so its value is identical in both circuit
//     copies) forced to the gate's controlling value, which fixes the
//     gate output identically in both copies. New frontier gates only
//     appear downstream of current ones, so killing the whole frontier
//     kills the subtree.
//
// An empty D-frontier is left to objective(), which already fails then.
func (e *engine) pruned() bool {
	if e.learn == nil {
		return false
	}
	// Close the definite good values under the implication database.
	for _, s := range e.impTouched {
		e.implied[s] = X
	}
	e.impTouched = e.impTouched[:0]
	for s := 0; s < e.c.NumGates(); s++ {
		if e.good[s] == X {
			continue
		}
		for _, l := range e.learn.Implied(implic.MkLit(s, e.good[s] == One)) {
			t := l.Signal()
			if e.implied[t] == X {
				e.implied[t] = stuckValue(l.Val())
				e.impTouched = append(e.impTouched, t)
			}
		}
	}

	site := e.faultSite()
	want := stuckValue(e.f.Stuck).invert()
	if e.good[site] == X {
		// Every completion drives the site to the stuck value: the fault
		// can never be excited under this assignment.
		return e.implied[site] == stuckValue(e.f.Stuck)
	}
	if e.good[site] != want {
		return false
	}

	frontier := 0
	for _, id := range e.c.TopoOrder() {
		g := e.c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		if e.good[id] != X && e.bad[id] != X {
			continue
		}
		diverges := false
		for pin, fin := range g.Fanin {
			gv, bv := e.good[fin], e.bad[fin]
			if !e.f.IsStem() && e.f.Gate == id && e.f.Pin == pin {
				bv = stuckValue(e.f.Stuck)
			}
			if gv != X && bv != X && gv != bv {
				diverges = true
				break
			}
		}
		if !diverges {
			continue
		}
		frontier++
		cvb, hasCtl := g.Type.ControllingValue()
		if !hasCtl {
			return false // XOR-likes and BUF/NOT always propagate
		}
		cv := stuckValue(cvb)
		dead := false
		for pin, fin := range g.Fanin {
			if !e.f.IsStem() && e.f.Gate == id && e.f.Pin == pin {
				continue
			}
			if e.good[fin] != X || e.cone[fin] {
				continue
			}
			if e.implied[fin] == cv {
				dead = true
				break
			}
		}
		if !dead {
			return false
		}
	}
	return frontier > 0
}

// backtrace maps an objective to a primary input assignment along a path
// of X-valued signals.
func (e *engine) backtrace(sig int, val Value) (int, Value) {
	c := e.c
	for c.Type(sig) != netlist.Input {
		g := c.Gate(sig)
		if g.Type.Inverting() {
			val = val.invert()
		}
		// Choose an X-valued input; prefer the first (simple heuristic).
		next := -1
		for _, fin := range g.Fanin {
			if e.good[fin] == X {
				next = fin
				break
			}
		}
		if next < 0 {
			next = g.Fanin[0]
		}
		sig = next
		// XOR objectives are value-agnostic for propagation; keep val.
	}
	// Translate signal to input position.
	for i, in := range c.Inputs() {
		if in == sig {
			return i, val
		}
	}
	return -1, X
}

// search is the PODEM decision loop.
func (e *engine) search() (found, aborted bool) {
	type decision struct {
		input   int
		value   Value
		flipped bool
	}
	var stack []decision
	e.imply()
	for {
		select {
		case <-e.done:
			e.ctxErr = e.ctx.Err()
			return false, true
		default:
		}
		if e.detected() {
			return true, false
		}
		if !e.pruned() {
			sig, val, ok := e.objective()
			if ok {
				in, v := e.backtrace(sig, val)
				if in >= 0 && e.assign[in] == X {
					stack = append(stack, decision{input: in, value: v})
					e.assign[in] = v
					e.imply()
					continue
				}
				// Backtrace landed on an assigned input: treat as conflict.
			}
		}
		// Conflict or no objective: backtrack.
		for {
			if len(stack) == 0 {
				return false, false
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				e.backs++
				if e.backs > e.limit {
					return false, true
				}
				top.flipped = true
				top.value = top.value.invert()
				e.assign[top.input] = top.value
				e.imply()
				break
			}
			e.assign[top.input] = X
			stack = stack[:len(stack)-1]
		}
	}
}

// TestSet is the outcome of whole-circuit test generation.
type TestSet struct {
	Vectors   [][]bool
	Detected  []fault.Fault
	Redundant []fault.Fault
	Aborted   []fault.Fault
}

// ErrNoFaults is returned when the fault list is empty.
var ErrNoFaults = errors.New("atpg: empty fault list")

// GenerateTests produces a compacted deterministic test set for the fault
// list: faults are targeted in order, and each new vector is fault-
// simulated against the remaining faults so that incidentally-detected
// faults are dropped without their own PODEM run.
func GenerateTests(c *netlist.Circuit, faults []fault.Fault, opts Options) (*TestSet, error) {
	return GenerateTestsContext(context.Background(), c, faults, opts)
}

// GenerateTestsContext is GenerateTests with cancellation: the context is
// checked between per-fault PODEM runs and inside each run's decision
// loop. On cancellation the partial TestSet built so far (every vector in
// it is a complete, valid test) is returned alongside ctx.Err(). When
// ctx carries a progress.Func, one "faults" sample is emitted before
// each PODEM run, counting faults already resolved.
func GenerateTestsContext(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, opts Options) (*TestSet, error) {
	if len(faults) == 0 {
		return nil, ErrNoFaults
	}
	ts := &TestSet{}
	report := progress.FromContext(ctx)
	remaining := append([]fault.Fault(nil), faults...)
	for len(remaining) > 0 {
		if report != nil {
			report("faults", int64(len(faults)-len(remaining)), int64(len(faults)))
		}
		target := remaining[0]
		res, err := GenerateContext(ctx, c, target, opts)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return ts, err
		}
		if err != nil {
			return nil, err
		}
		switch res.Status {
		case Redundant:
			ts.Redundant = append(ts.Redundant, target)
			remaining = remaining[1:]
		case Aborted:
			ts.Aborted = append(ts.Aborted, target)
			remaining = remaining[1:]
		case Detected:
			ts.Vectors = append(ts.Vectors, res.Vector)
			// Drop everything this vector detects.
			kept := remaining[:0]
			for _, f := range remaining {
				if vectorDetects(c, f, res.Vector) {
					ts.Detected = append(ts.Detected, f)
				} else {
					kept = append(kept, f)
				}
			}
			if len(kept) == len(remaining) {
				// The vector must detect at least its target; guard
				// against an engine bug rather than looping forever.
				return nil, fmt.Errorf("atpg: generated vector fails to detect its target %v", target)
			}
			remaining = kept
		}
	}
	return ts, nil
}

// vectorDetects checks by two-copy simulation whether the vector detects
// the fault.
func vectorDetects(c *netlist.Circuit, f fault.Fault, vec []bool) bool {
	good := make([]Value, c.NumGates())
	bad := make([]Value, c.NumGates())
	for i, in := range c.Inputs() {
		v := Zero
		if vec[i] {
			v = One
		}
		good[in] = v
		bad[in] = v
	}
	inG := make([]Value, 0, 8)
	inB := make([]Value, 0, 8)
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type != netlist.Input {
			inG = inG[:0]
			inB = inB[:0]
			for pin, fin := range g.Fanin {
				gv, bv := good[fin], bad[fin]
				if !f.IsStem() && f.Gate == id && f.Pin == pin {
					bv = stuckValue(f.Stuck)
				}
				inG = append(inG, gv)
				inB = append(inB, bv)
			}
			good[id] = eval3(g.Type, inG)
			bad[id] = eval3(g.Type, inB)
		}
		if f.IsStem() && f.Gate == id {
			bad[id] = stuckValue(f.Stuck)
		}
	}
	for _, o := range c.Outputs() {
		if good[o] != bad[o] {
			return true
		}
	}
	return false
}
