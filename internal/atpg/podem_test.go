package atpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/pattern"
	"repro/internal/testcount"
)

// oracleDetects evaluates both circuit copies on a full vector.
func oracleDetects(c *netlist.Circuit, f fault.Fault, vec []bool) bool {
	eval := func(inject bool) []bool {
		vals := make([]bool, c.NumGates())
		for i, in := range c.Inputs() {
			vals[in] = vec[i]
		}
		for _, id := range c.TopoOrder() {
			g := c.Gate(id)
			if g.Type != netlist.Input {
				in := make([]bool, len(g.Fanin))
				for pin, fin := range g.Fanin {
					in[pin] = vals[fin]
					if inject && !f.IsStem() && f.Gate == id && f.Pin == pin {
						in[pin] = f.Stuck
					}
				}
				vals[id] = g.Type.Eval(in)
			}
			if inject && f.IsStem() && f.Gate == id {
				vals[id] = f.Stuck
			}
		}
		return vals
	}
	good, bad := eval(false), eval(true)
	for _, o := range c.Outputs() {
		if good[o] != bad[o] {
			return true
		}
	}
	return false
}

func oracleDetectable(c *netlist.Circuit, f fault.Fault) bool {
	n := c.NumInputs()
	for v := 0; v < 1<<uint(n); v++ {
		vec := make([]bool, n)
		for i := range vec {
			vec[i] = v>>uint(i)&1 == 1
		}
		if oracleDetects(c, f, vec) {
			return true
		}
	}
	return false
}

func checkPODEMComplete(t *testing.T, c *netlist.Circuit) {
	t.Helper()
	for _, f := range fault.Universe(c) {
		res, err := Generate(c, f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", f.Name(c), err)
		}
		detectable := oracleDetectable(c, f)
		switch res.Status {
		case Detected:
			if !detectable {
				t.Errorf("%s: PODEM claims detected but fault is redundant", f.Name(c))
			} else if !oracleDetects(c, f, res.Vector) {
				t.Errorf("%s: PODEM vector %v does not detect the fault", f.Name(c), res.Vector)
			}
		case Redundant:
			if detectable {
				t.Errorf("%s: PODEM claims redundant but fault is detectable", f.Name(c))
			}
		case Aborted:
			t.Errorf("%s: PODEM aborted on a tiny circuit", f.Name(c))
		}
	}
}

func TestPODEMCompleteOnC17(t *testing.T) {
	checkPODEMComplete(t, gen.C17())
}

func TestPODEMCompleteOnRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		checkPODEMComplete(t, gen.RandomDAG(seed, 8, 25, gen.DAGOptions{}))
	}
}

func TestPODEMCompleteOnTrees(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		checkPODEMComplete(t, gen.RandomTree(seed, 8, gen.TreeOptions{}))
	}
}

func TestPODEMCompleteOnAdderAndParity(t *testing.T) {
	checkPODEMComplete(t, gen.RippleCarryAdder(3))
	checkPODEMComplete(t, gen.ParityTree(6))
}

func TestPODEMFindsRedundancy(t *testing.T) {
	// z = OR(a, AND(b, NOT b)): the AND output s-a-0 is undetectable (the
	// AND is constant 0), as are several related faults.
	b := netlist.NewBuilder("red")
	a := b.Input("a")
	x := b.Input("b")
	nb := b.NotGate("nb", x)
	g := b.AndGate("g", x, nb)
	z := b.OrGate("z", a, g)
	b.MarkOutput(z)
	c := b.MustBuild()
	res, err := Generate(c, fault.Fault{Gate: g, Pin: -1, Stuck: false}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Redundant {
		t.Errorf("AND(b,¬b) s-a-0: status %v, want redundant", res.Status)
	}
	// And the whole-circuit check against the oracle.
	checkPODEMComplete(t, c)
}

func TestGenerateTestsFullCoverage(t *testing.T) {
	// The compacted deterministic test set must detect every collapsed
	// fault when replayed through the fault simulator.
	for _, c := range []*netlist.Circuit{
		gen.C17(),
		gen.RandomDAG(4, 10, 50, gen.DAGOptions{}),
		gen.RippleCarryAdder(4),
	} {
		faults := fault.CollapsedUniverse(c)
		ts, err := GenerateTests(c, faults, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(ts.Aborted) != 0 {
			t.Errorf("%s: %d aborted faults", c.Name(), len(ts.Aborted))
		}
		res, err := fsim.Run(c, faults, pattern.NewVectors(ts.Vectors), fsim.Options{
			MaxPatterns: len(ts.Vectors) + 64,
			DropFaults:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := len(faults) - len(ts.Redundant)
		if got := len(res.FirstDetect); got < want {
			t.Errorf("%s: test set detects %d faults, want >= %d (of %d, %d redundant)",
				c.Name(), got, want, len(faults), len(ts.Redundant))
		}
	}
}

func TestGenerateTestsAtLeastHayesBound(t *testing.T) {
	// On fanout-free circuits the Hayes count is the exact minimum, so a
	// compacted ATPG set can never beat it — and should land close.
	for seed := int64(0); seed < 6; seed++ {
		c := gen.RandomTree(seed, 12, gen.TreeOptions{})
		ct, err := testcount.Compute(c)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := GenerateTests(c, fault.Universe(c), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(ts.Redundant) != 0 {
			t.Errorf("seed %d: fanout-free circuit reported %d redundant faults", seed, len(ts.Redundant))
		}
		min := ct.CircuitTests()
		if len(ts.Vectors) < min {
			t.Errorf("seed %d: ATPG produced %d vectors, below the proven minimum %d", seed, len(ts.Vectors), min)
		}
		if len(ts.Vectors) > 3*min {
			t.Errorf("seed %d: ATPG produced %d vectors, suspiciously far above minimum %d", seed, len(ts.Vectors), min)
		}
	}
}

func TestGenerateTestsEmptyFaultList(t *testing.T) {
	if _, err := GenerateTests(gen.C17(), nil, Options{}); err != ErrNoFaults {
		t.Errorf("expected ErrNoFaults, got %v", err)
	}
}

func TestGenerateBadFault(t *testing.T) {
	c := gen.C17()
	if _, err := Generate(c, fault.Fault{Gate: 999, Pin: -1}, Options{}); err == nil {
		t.Error("expected error for out-of-range fault")
	}
	if _, err := Generate(c, fault.Fault{Gate: 5, Pin: 7}, Options{}); err == nil {
		t.Error("expected error for out-of-range pin")
	}
}

func TestValueAndStatusStrings(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" || X.String() != "X" {
		t.Error("Value strings wrong")
	}
	if Detected.String() != "detected" || Redundant.String() != "redundant" || Aborted.String() != "aborted" {
		t.Error("Status strings wrong")
	}
}
