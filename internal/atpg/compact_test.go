package atpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/testcount"
)

func TestCompactPreservesCoverage(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c := gen.RandomDAG(seed, 10, 60, gen.DAGOptions{})
		faults := fault.CollapsedUniverse(c)
		ts, err := GenerateTests(c, faults, Options{})
		if err != nil {
			t.Fatal(err)
		}
		compacted := CompactTests(c, faults, ts.Vectors)
		if len(compacted) > len(ts.Vectors) {
			t.Fatalf("seed %d: compaction grew the set", seed)
		}
		before, err := fsim.Run(c, faults, pattern.NewVectors(ts.Vectors), fsim.Options{
			MaxPatterns: len(ts.Vectors) + 64, DropFaults: true})
		if err != nil {
			t.Fatal(err)
		}
		after, err := fsim.Run(c, faults, pattern.NewVectors(compacted), fsim.Options{
			MaxPatterns: len(compacted) + 64, DropFaults: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(after.FirstDetect) != len(before.FirstDetect) {
			t.Errorf("seed %d: compaction lost coverage: %d -> %d detections",
				seed, len(before.FirstDetect), len(after.FirstDetect))
		}
	}
}

func TestCompactCannotBeatProvenMinimum(t *testing.T) {
	// On fanout-free circuits the Hayes count is the true minimum, so a
	// compacted complete set can approach but never undercut it.
	for seed := int64(0); seed < 5; seed++ {
		c := gen.RandomTree(seed, 12, gen.TreeOptions{})
		ct, err := testcount.Compute(c)
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.Universe(c)
		ts, err := GenerateTests(c, faults, Options{})
		if err != nil {
			t.Fatal(err)
		}
		compacted := CompactTests(c, faults, ts.Vectors)
		if len(compacted) < ct.CircuitTests() {
			t.Errorf("seed %d: compacted set (%d) undercuts the proven minimum (%d)",
				seed, len(compacted), ct.CircuitTests())
		}
		if len(compacted) > len(ts.Vectors) {
			t.Errorf("seed %d: compaction grew the set", seed)
		}
	}
}

func TestCompactActuallyShrinksSomething(t *testing.T) {
	// Hand a deliberately padded set: the first vectors are duplicates.
	c := gen.C17()
	faults := fault.CollapsedUniverse(c)
	ts, err := GenerateTests(c, faults, Options{})
	if err != nil {
		t.Fatal(err)
	}
	padded := append([][]bool{}, ts.Vectors[0], ts.Vectors[0], ts.Vectors[0])
	padded = append(padded, ts.Vectors...)
	compacted := CompactTests(c, faults, padded)
	if len(compacted) >= len(padded) {
		t.Errorf("compaction kept all %d padded vectors", len(padded))
	}
}

func TestCompactTinySets(t *testing.T) {
	c := gen.C17()
	faults := fault.CollapsedUniverse(c)
	if got := CompactTests(c, faults, nil); len(got) != 0 {
		t.Error("nil set must stay nil")
	}
	one := [][]bool{{true, true, true, true, true}}
	if got := CompactTests(c, faults, one); len(got) != 1 {
		t.Error("single vector must be kept")
	}
}
