package atpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/implic"
	"repro/internal/netlist"
)

// learnCircuits are the shapes used to compare assisted and unassisted
// PODEM. They mix reconvergent fanout (where pruning bites) with regular
// arithmetic structure (where it must at least do no harm).
func learnCircuits(t *testing.T) map[string]*netlist.Circuit {
	t.Helper()
	return map[string]*netlist.Circuit{
		"c17":    gen.C17(),
		"parity": gen.ParityTree(8),
		"rca":    gen.RippleCarryAdder(4),
		"dag":    gen.RandomDAG(11, 10, 120, gen.DAGOptions{}),
		"rpr":    gen.RPResistant(5, 3, 6, 2),
	}
}

// TestLearnedSearchAgreesAndNeverBacktracksMore checks the two hard
// promises of Options.Learn: per-fault status is unchanged, and the
// pruned search never spends more backtracks than the baseline.
func TestLearnedSearchAgreesAndNeverBacktracksMore(t *testing.T) {
	for name, c := range learnCircuits(t) {
		t.Run(name, func(t *testing.T) {
			eng := implic.New(c, implic.Options{})
			baseTotal, learnTotal := 0, 0
			for _, f := range fault.Universe(c) {
				base, err := Generate(c, f, Options{})
				if err != nil {
					t.Fatalf("baseline %v: %v", f, err)
				}
				learned, err := Generate(c, f, Options{Learn: eng})
				if err != nil {
					t.Fatalf("learned %v: %v", f, err)
				}
				if base.Status != learned.Status {
					t.Errorf("fault %v: status %v with learning vs %v without", f, learned.Status, base.Status)
				}
				if learned.Backtracks > base.Backtracks {
					t.Errorf("fault %v: learning increased backtracks %d -> %d", f, base.Backtracks, learned.Backtracks)
				}
				baseTotal += base.Backtracks
				learnTotal += learned.Backtracks
			}
			t.Logf("%s: backtracks %d baseline, %d learned", name, baseTotal, learnTotal)
		})
	}
}

// TestLearnedVectorsStillDetect re-checks every vector found by the
// assisted search against the two-copy simulator: pruning must never
// damage the produced tests.
func TestLearnedVectorsStillDetect(t *testing.T) {
	c := gen.RandomDAG(23, 8, 90, gen.DAGOptions{})
	eng := implic.New(c, implic.Options{})
	for _, f := range fault.Universe(c) {
		res, err := Generate(c, f, Options{Learn: eng})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if res.Status == Detected && !vectorDetects(c, f, res.Vector) {
			t.Errorf("fault %v: vector from learned search does not detect it", f)
		}
	}
}

// TestLearnOnMismatchedCircuitIsIgnored guards the facade contract: an
// engine built for a different circuit must be silently ignored, not
// misapplied.
func TestLearnOnMismatchedCircuitIsIgnored(t *testing.T) {
	c := gen.C17()
	other := implic.New(gen.ParityTree(4), implic.Options{})
	f := fault.Fault{Gate: c.Outputs()[0], Pin: -1, Stuck: false}
	res, err := Generate(c, f, Options{Learn: other})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if res.Status != Detected {
		t.Errorf("output stem fault of c17 must be detected, got %v", res.Status)
	}
}
