package atpg

import (
	"repro/internal/fault"
	"repro/internal/netlist"
)

// CompactTests performs static (reverse-order) compaction of a test set:
// vectors are considered latest-first, and a vector is kept only if it
// detects some fault not detected by the vectors already kept. Because
// PODEM targets remaining faults in order, late vectors tend to cover
// many early faults incidentally, so reverse-order pruning removes the
// early, now-redundant vectors. The returned set detects exactly the
// same faults from the given list.
func CompactTests(c *netlist.Circuit, faults []fault.Fault, vecs [][]bool) [][]bool {
	if len(vecs) <= 1 {
		return vecs
	}
	covered := make([]bool, len(faults))
	remaining := len(faults)
	// Pre-filter: faults no vector detects never block compaction.
	detectable := make([]bool, len(faults))
	for i, f := range faults {
		for _, v := range vecs {
			if vectorDetects(c, f, v) {
				detectable[i] = true
				break
			}
		}
		if !detectable[i] {
			covered[i] = true
			remaining--
		}
	}
	var kept [][]bool
	for i := len(vecs) - 1; i >= 0 && remaining > 0; i-- {
		v := vecs[i]
		useful := false
		for fi, f := range faults {
			if !covered[fi] && vectorDetects(c, f, v) {
				covered[fi] = true
				remaining--
				useful = true
			}
		}
		if useful {
			kept = append(kept, v)
		}
	}
	// Restore original relative order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	return kept
}
