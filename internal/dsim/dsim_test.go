package dsim

import (
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// crossValidate runs both engines on identical patterns and demands
// identical first-detection results — two independent algorithms agreeing
// pattern by pattern.
func crossValidate(t *testing.T, c *netlist.Circuit, patterns int, seed uint64) {
	t.Helper()
	faults := fault.Universe(c)
	ded, err := Run(c, faults, pattern.NewLFSR(seed), Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		t.Fatalf("dsim: %v", err)
	}
	ppsfp, err := fsim.Run(c, faults, pattern.NewLFSR(seed), fsim.Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		t.Fatalf("fsim: %v", err)
	}
	if len(ded.FirstDetect) != len(ppsfp.FirstDetect) {
		t.Errorf("%s: deductive detects %d, PPSFP %d", c.Name(), len(ded.FirstDetect), len(ppsfp.FirstDetect))
	}
	for f, idx := range ppsfp.FirstDetect {
		di, ok := ded.FirstDetect[f]
		if !ok {
			t.Errorf("%s: %s missed by deductive engine (PPSFP at %d)", c.Name(), f.Name(c), idx)
			continue
		}
		if di != idx {
			t.Errorf("%s: %s first detect %d (deductive) vs %d (PPSFP)", c.Name(), f.Name(c), di, idx)
		}
	}
}

func TestCrossValidateC17(t *testing.T) {
	crossValidate(t, gen.C17(), 256, 7)
}

func TestCrossValidateRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		crossValidate(t, gen.RandomDAG(seed, 10, 60, gen.DAGOptions{}), 512, uint64(seed)+1)
	}
}

func TestCrossValidateStructured(t *testing.T) {
	crossValidate(t, gen.RippleCarryAdder(5), 512, 3)
	crossValidate(t, gen.ParityTree(9), 256, 4)
	crossValidate(t, gen.Comparator(6), 512, 5)
	crossValidate(t, gen.Multiplier(4), 512, 6)
	crossValidate(t, gen.Decoder(4), 256, 7)
}

func TestCrossValidateTrees(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		crossValidate(t, gen.RandomTree(seed, 15, gen.TreeOptions{}), 256, uint64(seed)+11)
	}
}

func TestCrossValidateQuickProperty(t *testing.T) {
	// Property: on random small DAGs with random seeds the two engines
	// agree on the detected set.
	f := func(seed int64, lfsrSeed uint64) bool {
		c := gen.RandomDAG(seed%32, 8, 30, gen.DAGOptions{})
		faults := fault.Universe(c)
		ded, err := Run(c, faults, pattern.NewLFSR(lfsrSeed), Options{MaxPatterns: 128, DropFaults: true})
		if err != nil {
			return false
		}
		pp, err := fsim.Run(c, faults, pattern.NewLFSR(lfsrSeed), fsim.Options{MaxPatterns: 128, DropFaults: true})
		if err != nil {
			return false
		}
		if len(ded.FirstDetect) != len(pp.FirstDetect) {
			return false
		}
		for ft, idx := range pp.FirstDetect {
			if ded.FirstDetect[ft] != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeductiveExhaustiveCoverage(t *testing.T) {
	// c17 exhaustive: full coverage, like the PPSFP engine.
	c := gen.C17()
	res, err := Run(c, fault.CollapsedUniverse(c), pattern.NewCounter(5), Options{MaxPatterns: 32, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("coverage = %.4f, want 1.0", res.Coverage())
	}
}

func TestDeductiveNoDropping(t *testing.T) {
	c := gen.C17()
	faults := fault.CollapsedUniverse(c)
	with, err := Run(c, faults, pattern.NewLFSR(1), Options{MaxPatterns: 256, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(c, faults, pattern.NewLFSR(1), Options{MaxPatterns: 256, DropFaults: false})
	if err != nil {
		t.Fatal(err)
	}
	for f, idx := range with.FirstDetect {
		if without.FirstDetect[f] != idx {
			t.Errorf("%s: dropping changed first detection", f.Name(c))
		}
	}
}

func TestDeductiveBadFault(t *testing.T) {
	c := gen.C17()
	if _, err := Run(c, []fault.Fault{{Gate: 999, Pin: -1}}, pattern.NewLFSR(1), Options{}); err == nil {
		t.Error("expected error for bad gate")
	}
	if _, err := Run(c, []fault.Fault{{Gate: 5, Pin: 9}}, pattern.NewLFSR(1), Options{}); err == nil {
		t.Error("expected error for bad pin")
	}
}
