// Package dsim implements deductive fault simulation, the classic
// one-pass-per-pattern alternative to the bit-parallel PPSFP engine in
// internal/fsim: for each applied pattern the good circuit is simulated
// once, and a *fault list* is deduced for every line — the set of faults
// whose presence would flip that line under this pattern. The lists at
// the primary outputs are exactly the faults the pattern detects.
//
// Deduction rules per gate (v = good output, cv = controlling value):
//
//   - no input at cv: the output deviates iff any input deviates
//     (union of input lists)
//   - some inputs at cv: the output deviates iff every controlling input
//     deviates and no non-controlling input does
//     (intersection over controlling minus union over non-controlling)
//   - XOR: parity — symmetric difference, folded pairwise
//   - BUF/NOT and output inversions leave the deviation set unchanged
//
// The engine exists for two reasons: it is a faithful reproduction of the
// era's second major fault simulation algorithm, and it cross-validates
// internal/fsim — two independent implementations must agree pattern by
// pattern.
package dsim

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// Options mirrors the fsim knobs that make sense for a deductive run.
type Options struct {
	// MaxPatterns bounds the run (0 = 32768).
	MaxPatterns int
	// DropFaults removes detected faults from further deduction.
	DropFaults bool
}

// Result reports the run. FirstDetect maps detected faults to the index
// of the first detecting pattern, exactly like fsim.Result.
type Result struct {
	Faults      []fault.Fault
	Patterns    int
	FirstDetect map[fault.Fault]int
}

// Coverage returns the detected fraction.
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 1
	}
	return float64(len(r.FirstDetect)) / float64(len(r.Faults))
}

// list is a sorted slice of fault indices (into the run's fault slice).
type list []int32

// engine holds per-run state.
type engine struct {
	c      *netlist.Circuit
	faults []fault.Fault
	// stemFaults[g] lists fault indices of stem faults at gate g, by
	// stuck value.
	stemFault0, stemFault1 []int32 // index+1, 0 = none
	// branchFaults[g][pin] likewise for branch faults.
	branch0, branch1 map[[2]int]int32
	active           []bool
	good             *logic.Simulator
	lists            []list
	scratch          list
}

// Run executes a deductive fault simulation.
func Run(c *netlist.Circuit, faults []fault.Fault, src pattern.Source, opts Options) (*Result, error) {
	if opts.MaxPatterns <= 0 {
		opts.MaxPatterns = 32768
	}
	e := &engine{
		c:          c,
		faults:     faults,
		stemFault0: make([]int32, c.NumGates()),
		stemFault1: make([]int32, c.NumGates()),
		branch0:    make(map[[2]int]int32),
		branch1:    make(map[[2]int]int32),
		active:     make([]bool, len(faults)),
		good:       logic.New(c),
		lists:      make([]list, c.NumGates()),
	}
	for i, f := range faults {
		if f.Gate < 0 || f.Gate >= c.NumGates() {
			return nil, fmt.Errorf("dsim: fault %v: gate out of range", f)
		}
		e.active[i] = true
		switch {
		case f.IsStem() && !f.Stuck:
			e.stemFault0[f.Gate] = int32(i + 1)
		case f.IsStem() && f.Stuck:
			e.stemFault1[f.Gate] = int32(i + 1)
		case f.Pin >= len(c.Fanin(f.Gate)):
			return nil, fmt.Errorf("dsim: fault %v: pin out of range", f)
		case !f.Stuck:
			e.branch0[[2]int{f.Gate, f.Pin}] = int32(i + 1)
		default:
			e.branch1[[2]int{f.Gate, f.Pin}] = int32(i + 1)
		}
	}

	res := &Result{Faults: faults, FirstDetect: make(map[fault.Fault]int)}
	words := make([]uint64, c.NumInputs())
	applied := 0
	remaining := len(faults)
	for applied < opts.MaxPatterns && remaining > 0 {
		n := src.FillBlock(words)
		if n == 0 {
			break
		}
		if applied+n > opts.MaxPatterns {
			n = opts.MaxPatterns - applied
		}
		if err := e.good.Run(words); err != nil {
			return nil, err
		}
		for b := 0; b < n; b++ {
			detected := e.deduce(uint(b))
			for _, fi := range detected {
				f := faults[fi]
				if _, seen := res.FirstDetect[f]; !seen {
					res.FirstDetect[f] = applied + b
					if opts.DropFaults {
						e.active[fi] = false
						remaining--
					}
				}
			}
			if opts.DropFaults && remaining == 0 {
				applied += b + 1
				res.Patterns = applied
				return res, nil
			}
		}
		applied += n
	}
	res.Patterns = applied
	return res, nil
}

// goodBit returns the good value of a signal in bit lane b.
func (e *engine) goodBit(id int, b uint) bool {
	return e.good.Value(id)>>b&1 == 1
}

// deduce computes all fault lists for one pattern lane and returns the
// union of PO lists (deduplicated, sorted).
func (e *engine) deduce(b uint) []int32 {
	c := e.c
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		var l list
		if g.Type == netlist.Input {
			l = nil
		} else {
			l = e.deduceGate(id, g, b)
		}
		// The gate's own stem fault deviates the line when its stuck
		// value differs from the good value.
		v := e.goodBit(id, b)
		var own int32
		if v {
			own = e.stemFault0[id]
		} else {
			own = e.stemFault1[id]
		}
		if own != 0 && e.active[own-1] {
			// Copy before inserting: l may alias an upstream list (BUF/NOT
			// pass lists through) and insertSorted writes in place.
			l = insertSorted(append(list(nil), l...), own-1)
		}
		e.lists[id] = l
	}
	var det list
	for _, o := range c.Outputs() {
		det = unionInto(det, e.lists[o])
	}
	return det
}

// branchList returns the deviation list of the branch feeding pin `pin`
// of gate id: the driver's list plus/minus the branch's own fault.
func (e *engine) branchList(id int, pin int, driver int, b uint) list {
	l := e.lists[driver]
	v := e.goodBit(driver, b)
	var own int32
	if v {
		own = e.branch0[[2]int{id, pin}]
	} else {
		own = e.branch1[[2]int{id, pin}]
	}
	if own != 0 && e.active[own-1] {
		l = insertSorted(append(list(nil), l...), own-1)
	}
	return l
}

// deduceGate applies the deduction rules for one gate.
func (e *engine) deduceGate(id int, g netlist.Gate, b uint) list {
	switch g.Type {
	case netlist.Buf, netlist.Not:
		return e.branchList(id, 0, g.Fanin[0], b)
	case netlist.Xor, netlist.Xnor:
		// Parity: fold symmetric differences.
		var acc list
		for pin, f := range g.Fanin {
			acc = symmetricDiff(acc, e.branchList(id, pin, f, b))
		}
		return acc
	}
	cv, _ := g.Type.ControllingValue()
	var ctrl []list    // lists of inputs at the controlling value
	var nonCtrl []list // lists of inputs at non-controlling values
	for pin, f := range g.Fanin {
		l := e.branchList(id, pin, f, b)
		if e.goodBit(f, b) == cv {
			ctrl = append(ctrl, l)
		} else {
			nonCtrl = append(nonCtrl, l)
		}
	}
	if len(ctrl) == 0 {
		// All inputs non-controlling: any deviation flips the output.
		var acc list
		for _, l := range nonCtrl {
			acc = unionInto(acc, l)
		}
		return acc
	}
	// Output flips iff every controlling input deviates and no
	// non-controlling input does.
	acc := append(list(nil), ctrl[0]...)
	for _, l := range ctrl[1:] {
		acc = intersect(acc, l)
		if len(acc) == 0 {
			return nil
		}
	}
	for _, l := range nonCtrl {
		acc = subtract(acc, l)
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}

// --- sorted int32 set operations ---

func insertSorted(l list, x int32) list {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= x })
	if i < len(l) && l[i] == x {
		return l
	}
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = x
	return l
}

// unionInto returns acc ∪ l in a fresh/reused slice (acc may be
// modified).
func unionInto(acc, l list) list {
	if len(l) == 0 {
		return acc
	}
	if len(acc) == 0 {
		return append(list(nil), l...)
	}
	out := make(list, 0, len(acc)+len(l))
	i, j := 0, 0
	for i < len(acc) && j < len(l) {
		switch {
		case acc[i] < l[j]:
			out = append(out, acc[i])
			i++
		case acc[i] > l[j]:
			out = append(out, l[j])
			j++
		default:
			out = append(out, acc[i])
			i++
			j++
		}
	}
	out = append(out, acc[i:]...)
	out = append(out, l[j:]...)
	return out
}

func intersect(a, b list) list {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func subtract(a, b list) list {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j >= len(b) || b[j] != a[i] {
			out = append(out, a[i])
		}
		i++
	}
	return out
}

func symmetricDiff(a, b list) list {
	out := make(list, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
