// Package cpt implements critical path tracing, the third classic fault
// grading algorithm (after parallel-pattern and deductive simulation):
// instead of injecting faults, it computes for each applied pattern which
// *lines* are critical — lines whose value flip would change a primary
// output — by tracing sensitized paths backward from the outputs. A
// stuck-at fault is detected by the pattern exactly when its line is
// critical and the fault is excited.
//
// Inside a fanout-free region criticality propagates by local gate rules
// (a gate input is critical iff the gate's output is critical and the
// input is the unique sensitizing one). Fanout stems cannot be traced
// locally — reconvergence can cancel the effect — so each stem is
// resolved exactly by a single-pattern flip simulation of its fanout
// cone, the "stem analysis" step of the published algorithm.
//
// Like internal/dsim, this engine doubles as an independent
// cross-validation oracle for the PPSFP simulator.
package cpt

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/implic"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// Options bounds a run.
type Options struct {
	// MaxPatterns bounds the run (0 = 32768).
	MaxPatterns int
	// DropFaults stops grading a fault after its first detection.
	DropFaults bool
	// PruneStatic drops faults the static implication engine
	// (internal/implic) proves untestable from the active list before
	// grading. The result is unchanged — such faults are never detected
	// and stay in Result.Faults, so Coverage keeps its denominator —
	// but their per-pattern checks and stem analyses are skipped.
	// Ignored on circuits above ~4096 gates.
	PruneStatic bool
}

// Result mirrors the other engines' reporting.
type Result struct {
	Faults      []fault.Fault
	Patterns    int
	FirstDetect map[fault.Fault]int
}

// Coverage returns the detected fraction.
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 1
	}
	return float64(len(r.FirstDetect)) / float64(len(r.Faults))
}

type engine struct {
	c    *netlist.Circuit
	good *logic.Simulator
	// lineCrit[g]: the output line of g is critical under the current
	// pattern.
	lineCrit []bool
	// flip-simulation scratch
	val   []bool
	stamp []int64
	sched []int64
	epoch int64
	// level buckets for the flip wave
	buckets  [][]int
	minLevel int
	maxLevel int
	inbuf    []bool
	revTopo  []int
}

// Run grades the fault list by critical path tracing.
func Run(c *netlist.Circuit, faults []fault.Fault, src pattern.Source, opts Options) (*Result, error) {
	if opts.MaxPatterns <= 0 {
		opts.MaxPatterns = 32768
	}
	for _, f := range faults {
		if f.Gate < 0 || f.Gate >= c.NumGates() {
			return nil, fmt.Errorf("cpt: fault %v: gate out of range", f)
		}
		if !f.IsStem() && f.Pin >= len(c.Fanin(f.Gate)) {
			return nil, fmt.Errorf("cpt: fault %v: pin out of range", f)
		}
	}
	e := &engine{
		c:        c,
		good:     logic.New(c),
		lineCrit: make([]bool, c.NumGates()),
		val:      make([]bool, c.NumGates()),
		stamp:    make([]int64, c.NumGates()),
		sched:    make([]int64, c.NumGates()),
		buckets:  make([][]int, c.Depth()+1),
		inbuf:    make([]bool, 0, 8),
	}
	topo := c.TopoOrder()
	e.revTopo = make([]int, len(topo))
	for i, id := range topo {
		e.revTopo[len(topo)-1-i] = id
	}

	res := &Result{Faults: faults, FirstDetect: make(map[fault.Fault]int)}
	active := make([]fault.Fault, len(faults))
	copy(active, faults)
	if opts.PruneStatic && c.NumGates() <= 4096 {
		red := implic.New(c, implic.Options{}).RedundantSet()
		if len(red) > 0 {
			kept := active[:0]
			for _, f := range active {
				if !red[f] {
					kept = append(kept, f)
				}
			}
			active = kept
		}
	}
	words := make([]uint64, c.NumInputs())
	applied := 0
	for applied < opts.MaxPatterns && len(active) > 0 {
		n := src.FillBlock(words)
		if n == 0 {
			break
		}
		if applied+n > opts.MaxPatterns {
			n = opts.MaxPatterns - applied
		}
		if err := e.good.Run(words); err != nil {
			return nil, err
		}
		for b := 0; b < n; b++ {
			e.trace(uint(b))
			kept := active[:0]
			for _, f := range active {
				if e.detects(f, uint(b)) {
					if _, seen := res.FirstDetect[f]; !seen {
						res.FirstDetect[f] = applied + b
					}
					if opts.DropFaults {
						continue
					}
				}
				kept = append(kept, f)
			}
			active = kept
			if len(active) == 0 {
				res.Patterns = applied + b + 1
				return res, nil
			}
		}
		applied += n
	}
	res.Patterns = applied
	return res, nil
}

// goodBit reads the good value of a signal in lane b.
func (e *engine) goodBit(id int, b uint) bool {
	return e.good.Value(id)>>b&1 == 1
}

// trace computes lineCrit for every gate under pattern lane b.
func (e *engine) trace(b uint) {
	c := e.c
	for _, id := range e.revTopo {
		switch {
		case c.IsOutput(id):
			// Flipping an observed line always changes that output.
			e.lineCrit[id] = true
		case c.FanoutCount(id) == 0:
			e.lineCrit[id] = false
		case c.FanoutCount(id) == 1:
			consumer := c.Fanout(id)[0]
			pin := -1
			for p, f := range c.Fanin(consumer) {
				if f == id {
					pin = p
					break
				}
			}
			e.lineCrit[id] = e.lineCrit[consumer] && e.sensitized(consumer, pin, b)
		default:
			// Fanout stem: exact flip simulation through the cone.
			e.lineCrit[id] = e.stemFlipChangesOutput(id, b)
		}
	}
}

// sensitized reports whether a flip on input pin of gate propagates to
// the gate output under the current pattern lane.
func (e *engine) sensitized(gate, pin int, b uint) bool {
	g := e.c.Gate(gate)
	switch g.Type {
	case netlist.Buf, netlist.Not:
		return true
	case netlist.Xor, netlist.Xnor:
		return true
	}
	cv, _ := g.Type.ControllingValue()
	nCtrl := 0
	pinCtrl := false
	for p, f := range g.Fanin {
		if e.goodBit(f, b) == cv {
			nCtrl++
			if p == pin {
				pinCtrl = true
			}
		}
	}
	switch nCtrl {
	case 0:
		return true // flipping pin makes it the lone controlling input
	case 1:
		return pinCtrl // only the controlling input's flip matters
	default:
		return false // another input keeps the output pinned
	}
}

// branchCritical reports whether the branch into (gate, pin) is critical.
func (e *engine) branchCritical(gate, pin int, b uint) bool {
	return e.lineCrit[gate] && e.sensitized(gate, pin, b)
}

// detects applies the criticality verdicts to one fault.
func (e *engine) detects(f fault.Fault, b uint) bool {
	if f.IsStem() {
		return e.lineCrit[f.Gate] && e.goodBit(f.Gate, b) != f.Stuck
	}
	driver := e.c.Fanin(f.Gate)[f.Pin]
	return e.branchCritical(f.Gate, f.Pin, b) && e.goodBit(driver, b) != f.Stuck
}

// stemFlipChangesOutput event-simulates the stem forced to its complement
// and reports whether any primary output changes — exact stem analysis.
func (e *engine) stemFlipChangesOutput(stem int, b uint) bool {
	c := e.c
	e.epoch++
	e.minLevel = len(e.buckets)
	e.maxLevel = -1
	flipped := !e.goodBit(stem, b)
	e.val[stem] = flipped
	e.stamp[stem] = e.epoch
	if c.IsOutput(stem) {
		return true
	}
	for _, consumer := range c.Fanout(stem) {
		e.schedule(consumer)
	}
	for l := e.minLevel; l <= e.maxLevel; l++ {
		bucket := e.buckets[l]
		e.buckets[l] = bucket[:0]
		for _, id := range bucket {
			g := c.Gate(id)
			e.inbuf = e.inbuf[:0]
			for _, fin := range g.Fanin {
				e.inbuf = append(e.inbuf, e.faulty(fin, b))
			}
			nv := g.Type.Eval(e.inbuf)
			if nv == e.goodBit(id, b) {
				continue
			}
			e.val[id] = nv
			e.stamp[id] = e.epoch
			if c.IsOutput(id) {
				return true
			}
			for _, consumer := range c.Fanout(id) {
				e.schedule(consumer)
			}
		}
	}
	return false
}

func (e *engine) faulty(id int, b uint) bool {
	if e.stamp[id] == e.epoch {
		return e.val[id]
	}
	return e.goodBit(id, b)
}

func (e *engine) schedule(id int) {
	if e.sched[id] == e.epoch {
		return
	}
	e.sched[id] = e.epoch
	l := e.c.Level(id)
	e.buckets[l] = append(e.buckets[l], id)
	if l < e.minLevel {
		e.minLevel = l
	}
	if l > e.maxLevel {
		e.maxLevel = l
	}
}
