package cpt

import (
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

func crossValidate(t *testing.T, c *netlist.Circuit, patterns int, seed uint64) {
	t.Helper()
	faults := fault.Universe(c)
	traced, err := Run(c, faults, pattern.NewLFSR(seed), Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		t.Fatalf("cpt: %v", err)
	}
	ppsfp, err := fsim.Run(c, faults, pattern.NewLFSR(seed), fsim.Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		t.Fatalf("fsim: %v", err)
	}
	if len(traced.FirstDetect) != len(ppsfp.FirstDetect) {
		t.Errorf("%s: CPT detects %d, PPSFP %d", c.Name(), len(traced.FirstDetect), len(ppsfp.FirstDetect))
	}
	for f, idx := range ppsfp.FirstDetect {
		ti, ok := traced.FirstDetect[f]
		if !ok {
			t.Errorf("%s: %s missed by CPT (PPSFP at %d)", c.Name(), f.Name(c), idx)
			continue
		}
		if ti != idx {
			t.Errorf("%s: %s first detect %d (CPT) vs %d (PPSFP)", c.Name(), f.Name(c), ti, idx)
		}
	}
	for f := range traced.FirstDetect {
		if _, ok := ppsfp.FirstDetect[f]; !ok {
			t.Errorf("%s: CPT claims %s detected, PPSFP disagrees", c.Name(), f.Name(c))
		}
	}
}

func TestCrossValidateC17(t *testing.T) {
	crossValidate(t, gen.C17(), 256, 3)
}

func TestCrossValidateRandomDAGs(t *testing.T) {
	// Reconvergent circuits exercise the exact stem analysis.
	for seed := int64(0); seed < 8; seed++ {
		crossValidate(t, gen.RandomDAG(seed, 10, 60, gen.DAGOptions{}), 512, uint64(seed)+21)
	}
}

func TestCrossValidateStructured(t *testing.T) {
	crossValidate(t, gen.RippleCarryAdder(5), 512, 13)
	crossValidate(t, gen.ParityTree(9), 256, 14)
	crossValidate(t, gen.Comparator(6), 512, 15)
	crossValidate(t, gen.Multiplier(4), 512, 16)
}

func TestCrossValidateTreesNoStemAnalysis(t *testing.T) {
	// Fanout-free circuits exercise only the local tracing rules.
	for seed := int64(0); seed < 5; seed++ {
		crossValidate(t, gen.RandomTree(seed, 15, gen.TreeOptions{}), 256, uint64(seed)+31)
	}
}

func TestCrossValidateQuickProperty(t *testing.T) {
	f := func(seed int64, lfsrSeed uint64) bool {
		c := gen.RandomDAG(seed%32, 8, 30, gen.DAGOptions{})
		faults := fault.Universe(c)
		traced, err := Run(c, faults, pattern.NewLFSR(lfsrSeed), Options{MaxPatterns: 128, DropFaults: true})
		if err != nil {
			return false
		}
		pp, err := fsim.Run(c, faults, pattern.NewLFSR(lfsrSeed), fsim.Options{MaxPatterns: 128, DropFaults: true})
		if err != nil {
			return false
		}
		if len(traced.FirstDetect) != len(pp.FirstDetect) {
			return false
		}
		for ft, idx := range pp.FirstDetect {
			if traced.FirstDetect[ft] != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCancellingReconvergence(t *testing.T) {
	// z = XOR(a, a) through explicit fanout: flipping the stem flips both
	// XOR inputs and the output stays 0 — the stem must NOT be critical,
	// though both branches are.
	b := netlist.NewBuilder("cancel")
	a := b.Input("a")
	s := b.BufGate("s", a)
	x1 := b.BufGate("x1", s)
	x2 := b.BufGate("x2", s)
	z := b.XorGate("z", x1, x2)
	b.MarkOutput(z)
	c := b.MustBuild()
	// Both stem faults on s are undetectable (z == 0 always); branch
	// faults into x1/x2 are each detectable... through the XOR they flip
	// exactly one input.
	sid, _ := c.GateByName("s")
	x1id, _ := c.GateByName("x1")
	faults := []fault.Fault{
		{Gate: sid, Pin: -1, Stuck: false},
		{Gate: sid, Pin: -1, Stuck: true},
		{Gate: x1id, Pin: 0, Stuck: false},
		{Gate: x1id, Pin: 0, Stuck: true},
	}
	res, err := Run(c, faults, pattern.NewCounter(1), Options{MaxPatterns: 2, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, det := res.FirstDetect[faults[0]]; det {
		t.Error("stem s-a-0 detected despite cancelling reconvergence")
	}
	if _, det := res.FirstDetect[faults[1]]; det {
		t.Error("stem s-a-1 detected despite cancelling reconvergence")
	}
	if _, det := res.FirstDetect[faults[2]]; !det {
		t.Error("branch s-a-0 into x1 must be detectable")
	}
	if _, det := res.FirstDetect[faults[3]]; !det {
		t.Error("branch s-a-1 into x1 must be detectable")
	}
}

func TestCPTBadFault(t *testing.T) {
	c := gen.C17()
	if _, err := Run(c, []fault.Fault{{Gate: -1, Pin: -1}}, pattern.NewLFSR(1), Options{}); err == nil {
		t.Error("expected error for bad gate")
	}
}

// TestPruneStaticIdenticalResults checks that the static pre-prune is a
// pure optimisation: identical FirstDetect map with and without it,
// including on a circuit that contains statically redundant faults.
func TestPruneStaticIdenticalResults(t *testing.T) {
	b := netlist.NewBuilder("red")
	a := b.Input("a")
	x := b.Input("b")
	n1 := b.AndGate("n1", a, x)
	z := b.OrGate("z", n1, a)
	b.MarkOutput(z)
	c := b.MustBuild()
	faults := fault.Universe(c)

	plain, err := Run(c, faults, pattern.NewCounter(2), Options{MaxPatterns: 4})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(c, faults, pattern.NewCounter(2), Options{MaxPatterns: 4, PruneStatic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.FirstDetect) != len(pruned.FirstDetect) {
		t.Fatalf("detections differ: %d plain vs %d pruned", len(plain.FirstDetect), len(pruned.FirstDetect))
	}
	for f, p := range plain.FirstDetect {
		if pp, ok := pruned.FirstDetect[f]; !ok || pp != p {
			t.Errorf("fault %v: first detection %d plain vs %d (ok=%v) pruned", f, p, pp, ok)
		}
	}
	if plain.Coverage() != pruned.Coverage() {
		t.Errorf("coverage changed: %v vs %v", plain.Coverage(), pruned.Coverage())
	}
}
