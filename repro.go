// Package repro is an open-source reconstruction of B. Krishnamurthy,
// "A Dynamic Programming Approach to the Test Point Insertion Problem"
// (Proc. Design Automation Conference, 1987): budget-constrained test
// point insertion for combinational circuits, solved exactly by dynamic
// programming on fanout-free circuits and shown NP-complete — and
// attacked heuristically — in the presence of reconvergent fanout.
//
// The package is a facade over the internal implementation, exposing what
// a downstream DFT user needs:
//
//   - circuit construction (Builder), .bench I/O, and benchmark generators
//   - the stuck-at fault model with structural collapsing
//   - a bit-parallel fault simulator and LFSR/counter/vector pattern
//     sources
//   - COP/SCOAP testability analysis and the Hayes–Friedman test-count
//     theory
//   - the test point planners: exact DP, greedy, random, exhaustive, for
//     both the minimax test-count objective (full cuts) and the
//     detection-probability coverage objective (observation points), plus
//     control point selection and the combined hybrid flow
//   - a PODEM ATPG for deterministic top-up vectors and redundancy proofs
//
// See DESIGN.md for the reconstruction provenance (including the
// paper-text mismatch notice) and EXPERIMENTS.md for the reproduced
// evaluation.
package repro

import (
	"context"
	"io"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/bist"
	"repro/internal/diag"
	"repro/internal/eqcheck"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/implic"
	"repro/internal/lint"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/npc"
	"repro/internal/opt"
	"repro/internal/pattern"
	"repro/internal/scan"
	"repro/internal/testability"
	"repro/internal/testcount"
	"repro/internal/tpi"
	"repro/internal/vlog"
)

// Circuit is a validated gate-level combinational circuit.
type Circuit = netlist.Circuit

// Builder constructs circuits programmatically.
type Builder = netlist.Builder

// GateType enumerates the primitive gate functions.
type GateType = netlist.GateType

// Gate types.
const (
	Input = netlist.Input
	Buf   = netlist.Buf
	Not   = netlist.Not
	And   = netlist.And
	Nand  = netlist.Nand
	Or    = netlist.Or
	Nor   = netlist.Nor
	Xor   = netlist.Xor
	Xnor  = netlist.Xnor
)

// TestPoint is a placement decision produced by the planners.
type TestPoint = netlist.TestPoint

// TestPointKind selects observation, control-0, control-1, or full-cut
// insertion.
type TestPointKind = netlist.TestPointKind

// Test point kinds.
const (
	Observe  = netlist.Observe
	Control0 = netlist.Control0
	Control1 = netlist.Control1
	FullCut  = netlist.FullCut
)

// NewBuilder returns an empty circuit builder.
func NewBuilder(name string) *Builder { return netlist.NewBuilder(name) }

// ParseBench reads an ISCAS'85-style .bench netlist.
func ParseBench(r io.Reader, name string) (*Circuit, error) { return bench.Parse(r, name) }

// WriteBench writes a circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// ParseVerilog reads a structural Verilog module (primitive gates only).
func ParseVerilog(r io.Reader) (*Circuit, error) { return vlog.Parse(r) }

// WriteVerilog writes a circuit as a structural Verilog module.
func WriteVerilog(w io.Writer, c *Circuit) error { return vlog.Write(w, c) }

// Optimize runs the netlist cleanup passes (buffer sweep, inverter-pair
// removal, structural CSE, dead logic removal) and returns an equivalent
// circuit plus what was done.
func Optimize(c *Circuit) (*Circuit, *OptimizeStats, error) {
	return opt.Optimize(c, opt.Options{})
}

// OptimizeStats counts the optimizer's rewrites.
type OptimizeStats = opt.Stats

// Equivalent checks functional equivalence of two circuits: an
// exhaustive proof for small input counts, dense random simulation
// otherwise. The counterexample is non-nil when they differ.
func Equivalent(a, b *Circuit) (bool, *eqcheck.Counterexample, error) {
	return eqcheck.Equal(a, b, eqcheck.Options{})
}

// LintReport is the result of a static-analysis run over a circuit.
type LintReport = lint.Report

// LintFinding is one static-analysis diagnostic.
type LintFinding = lint.Finding

// LintOptions configures the static analyzer; the zero value runs every
// pass with the default thresholds.
type LintOptions = lint.Options

// LintSeverity grades a lint finding.
type LintSeverity = lint.Severity

// Lint severities.
const (
	LintInfo    = lint.Info
	LintWarning = lint.Warning
	LintError   = lint.Error
)

// Lint statically analyzes the circuit without simulating a single
// pattern: structural hygiene, proven-constant lines (and the stuck-at
// faults they make untestable), duplicated cones, COP-ranked
// random-pattern-resistant stems, and the fanout-free / reconvergence
// structure that decides which planner applies. See cmd/lint for the CLI.
func Lint(c *Circuit, opts LintOptions) *LintReport { return lint.Analyze(c, opts) }

// ScanDesign is a full-scan design: a combinational core plus scanned
// flip-flops and a test-time model.
type ScanDesign = scan.Design

// ParseSequentialBench reads a sequential .bench netlist (DFF gates) and
// returns its full-scan transformation.
func ParseSequentialBench(r io.Reader, name string, chains int) (*ScanDesign, error) {
	return scan.ParseSequentialBench(r, name, chains)
}

// Fault is one single stuck-at fault.
type Fault = fault.Fault

// Faults enumerates the collapsed stuck-at fault universe of a circuit.
func Faults(c *Circuit) []Fault { return fault.CollapsedUniverse(c) }

// AllFaults enumerates the uncollapsed fault universe.
func AllFaults(c *Circuit) []Fault { return fault.Universe(c) }

// FaultsDominance enumerates the equivalence-plus-dominance collapsed
// fault list, the smallest standard target set for test generation.
func FaultsDominance(c *Circuit) []Fault { return fault.CollapseWithDominance(c) }

// ImplicationEngine is the static implication engine: direct and learned
// (SOCRATES-style) implications, dominator analysis, proven constants,
// and statically-proven-redundant faults.
type ImplicationEngine = implic.Engine

// ImplicationOptions configures the engine; the zero value learns with
// the default number of rounds.
type ImplicationOptions = implic.Options

// Implications builds the static implication engine for a circuit.
func Implications(c *Circuit) *ImplicationEngine { return implic.New(c, implic.Options{}) }

// StaticRedundantFaults returns the stuck-at faults proven untestable by
// static implication analysis alone — no test pattern search involved.
// Every returned fault is genuinely redundant (PODEM-confirmed in the
// cross-check tests); the converse does not hold.
func StaticRedundantFaults(c *Circuit) []Fault {
	return implic.New(c, implic.Options{}).RedundantFaults()
}

// FaultsStatic enumerates the smallest fault list the static analyses
// can produce: equivalence-plus-dominance collapsing with every class
// containing a statically redundant fault removed.
func FaultsStatic(c *Circuit) []Fault {
	return implic.New(c, implic.Options{}).Collapse()
}

// PatternSource produces 64-pattern blocks for the fault simulator.
type PatternSource = pattern.Source

// NewLFSR returns a 64-bit maximal-length LFSR pattern source.
func NewLFSR(seed uint64) PatternSource { return pattern.NewLFSR(seed) }

// NewCounter returns an exhaustive pattern source for n-input circuits.
func NewCounter(n int) PatternSource { return pattern.NewCounter(n) }

// NewVectors returns a source replaying explicit test vectors.
func NewVectors(vecs [][]bool) PatternSource { return pattern.NewVectors(vecs) }

// ParseVectors reads test vectors in plain text form (one 0/1 string per
// line).
func ParseVectors(r io.Reader) ([][]bool, error) { return pattern.ParseVectorText(r) }

// WriteVectors writes test vectors in the format ParseVectors reads.
func WriteVectors(w io.Writer, vecs [][]bool) error { return pattern.WriteVectorText(w, vecs) }

// MISR is a 64-bit multiple-input signature register for BIST response
// compaction.
type MISR = bist.MISR

// NewMISR returns a zero-initialised MISR.
func NewMISR() *MISR { return bist.NewMISR() }

// BISTResult reports a signature-based self-test session.
type BISTResult = bist.Result

// RunBIST executes a full signature-based BIST session: patterns from
// src drive the circuit, responses compact into a MISR, and each fault is
// judged by signature comparison (aliasing reported explicitly).
func RunBIST(c *Circuit, faults []Fault, src PatternSource, patterns int) (*BISTResult, error) {
	return bist.Run(c, faults, src, patterns)
}

// SimOptions configures fault simulation.
type SimOptions = fsim.Options

// SimResult reports a fault simulation run.
type SimResult = fsim.Result

// Simulate fault-simulates the fault list under the pattern source.
func Simulate(c *Circuit, faults []Fault, src PatternSource, opts SimOptions) (*SimResult, error) {
	return fsim.Run(c, faults, src, opts)
}

// SimulateContext is Simulate with cancellation: the run stops at the
// next 64-pattern block boundary once ctx is done, returning the partial
// result over completed blocks alongside ctx.Err().
func SimulateContext(ctx context.Context, c *Circuit, faults []Fault, src PatternSource, opts SimOptions) (*SimResult, error) {
	return fsim.RunContext(ctx, c, faults, src, opts)
}

// SimulateDefault runs the collapsed universe for 32768 LFSR-style
// patterns with fault dropping.
func SimulateDefault(c *Circuit, src PatternSource) (*SimResult, error) {
	return fsim.RunDefault(c, src)
}

// LogicSim is the 64-way bit-parallel logic simulator.
type LogicSim = logic.Simulator

// NewLogicSim returns a simulator for the circuit.
func NewLogicSim(c *Circuit) *LogicSim { return logic.New(c) }

// COP holds controllability/observability probabilities.
type COP = testability.COP

// COPOptions configures the analysis.
type COPOptions = testability.COPOptions

// NewCOP computes COP measures (exact on fanout-free circuits).
func NewCOP(c *Circuit, opts COPOptions) *COP { return testability.NewCOP(c, opts) }

// NewCOPMeasured computes COP measures with controllabilities measured
// by logic simulation, capturing the reconvergence correlation the
// analytic forward pass misses.
func NewCOPMeasured(c *Circuit, src PatternSource, patterns int, opts COPOptions) (*COP, error) {
	return testability.NewCOPMeasured(c, src, patterns, opts)
}

// SCOAP holds the integer SCOAP testability measures.
type SCOAP = testability.SCOAP

// NewSCOAP computes the SCOAP measures.
func NewSCOAP(c *Circuit) *SCOAP { return testability.NewSCOAP(c) }

// TestCounts holds the Hayes–Friedman minimal test counts of a
// fanout-free circuit.
type TestCounts = testcount.Counts

// ComputeTestCounts evaluates the test-count recurrences (fanout-free
// unate circuits only).
func ComputeTestCounts(c *Circuit) (*TestCounts, error) { return testcount.Compute(c) }

// CutPlan is a P1 (full test point / minimax test count) planning result.
type CutPlan = tpi.CutPlan

// PlanCuts computes the optimal K-cut placement by dynamic programming.
func PlanCuts(c *Circuit, k int) (*CutPlan, error) { return tpi.PlanCutsDP(c, k) }

// PlanCutsGreedy is the greedy baseline for P1.
func PlanCutsGreedy(c *Circuit, k int) (*CutPlan, error) { return tpi.PlanCutsGreedy(c, k) }

// PlanCutsFast is the near-optimal threshold-greedy P1 planner: one
// greedy feasibility pass per binary-search step instead of the DP's
// Pareto sets. Usually optimal, always valid; see the E8 ablation.
func PlanCutsFast(c *Circuit, k int) (*CutPlan, error) { return tpi.PlanCutsThreshold(c, k) }

// CostFunc assigns integer insertion costs to signals for the weighted
// planner.
type CostFunc = tpi.CostFunc

// PlanCutsWeighted is PlanCuts under a per-signal cost model: total
// insertion cost may not exceed the budget.
func PlanCutsWeighted(c *Circuit, budget int, cost CostFunc) (*CutPlan, error) {
	return tpi.PlanCutsDPWithCost(c, budget, cost)
}

// OPPlan is a P2 (observation point / detection threshold) planning
// result.
type OPPlan = tpi.OPPlan

// OPOptions configures observation point planning.
type OPOptions = tpi.OPOptions

// PlanObservationPoints selects at most k observation points by the exact
// per-region tree DP with budget knapsacking (optimal on fanout-free
// circuits).
func PlanObservationPoints(c *Circuit, faults []Fault, k int, dth float64, opts OPOptions) (*OPPlan, error) {
	return tpi.PlanObservationPointsDP(c, faults, k, dth, opts)
}

// CPPlan is a control point selection result.
type CPPlan = tpi.CPPlan

// CPOptions configures control point selection.
type CPOptions = tpi.CPOptions

// PlanControlPoints greedily selects control points that lift hard faults
// over the detection threshold.
func PlanControlPoints(c *Circuit, faults []Fault, k int, dth float64, opts CPOptions) (*CPPlan, error) {
	return tpi.PlanControlPointsGreedy(c, faults, k, dth, opts)
}

// HybridPlan combines control and observation point stages.
type HybridPlan = tpi.HybridPlan

// PlanTestPoints runs the full flow: greedy control points then DP
// observation points; the returned plan carries the modified circuit.
func PlanTestPoints(c *Circuit, faults []Fault, nCP, nOP int, dth float64) (*HybridPlan, error) {
	return tpi.PlanHybrid(c, faults, nCP, nOP, dth, tpi.CPOptions{}, tpi.OPOptions{})
}

// PlanTestPointsContext is PlanTestPoints with cancellation: both the
// greedy control point stage and the observation point DP poll ctx and
// abandon planning promptly once it is done (no partial plan is
// returned).
func PlanTestPointsContext(ctx context.Context, c *Circuit, faults []Fault, nCP, nOP int, dth float64) (*HybridPlan, error) {
	return tpi.PlanHybridContext(ctx, c, faults, nCP, nOP, dth, tpi.CPOptions{}, tpi.OPOptions{})
}

// ATPGOptions configures the PODEM test generator.
type ATPGOptions = atpg.Options

// ATPGResult reports one PODEM run.
type ATPGResult = atpg.Result

// TestSet is a compacted deterministic test set.
type TestSet = atpg.TestSet

// GenerateTest runs PODEM for a single fault.
func GenerateTest(c *Circuit, f Fault, opts ATPGOptions) (*ATPGResult, error) {
	return atpg.Generate(c, f, opts)
}

// GenerateTests produces a compacted deterministic test set for the fault
// list.
func GenerateTests(c *Circuit, faults []Fault, opts ATPGOptions) (*TestSet, error) {
	return atpg.GenerateTests(c, faults, opts)
}

// GenerateTestsContext is GenerateTests with cancellation: the PODEM
// backtrack loop polls ctx, and on cancellation the partial test set
// over faults processed so far is returned alongside ctx.Err().
func GenerateTestsContext(ctx context.Context, c *Circuit, faults []Fault, opts ATPGOptions) (*TestSet, error) {
	return atpg.GenerateTestsContext(ctx, c, faults, opts)
}

// CompactTests statically compacts a test set (reverse-order pruning)
// without losing coverage over the fault list.
func CompactTests(c *Circuit, faults []Fault, vecs [][]bool) [][]bool {
	return atpg.CompactTests(c, faults, vecs)
}

// Dictionary is a precomputed fault dictionary for diagnosis.
type Dictionary = diag.Dictionary

// DictionaryLevel selects pass/fail or full-response syndromes.
type DictionaryLevel = diag.Level

// Dictionary resolutions.
const (
	PassFail     = diag.PassFail
	FullResponse = diag.FullResponse
)

// BuildDictionary fault-simulates every fault against the test set and
// records its syndrome for later diagnosis.
func BuildDictionary(c *Circuit, faults []Fault, vecs [][]bool, level DictionaryLevel) (*Dictionary, error) {
	return diag.Build(c, faults, vecs, level)
}

// SetCover is an instance of the Set Cover problem used by the hardness
// reduction.
type SetCover = npc.SetCover

// ReduceSetCover builds the TPI gadget circuit for a Set Cover instance,
// demonstrating NP-completeness of general test point insertion.
func ReduceSetCover(sc SetCover) (*npc.Reduction, error) { return npc.Reduce(sc) }

// SolveSetCoverExact returns the exact minimum cover size by branch and
// bound (the reference answer for the reduction experiments).
func SolveSetCoverExact(sc SetCover) int { return npc.SolveSetCoverExact(sc) }

// RandomSetCover generates a random coverable Set Cover instance.
func RandomSetCover(seed int64, elements, sets, maxSetSize int) SetCover {
	return npc.RandomInstance(seed, elements, sets, maxSetSize)
}

// Benchmark circuit generators (all deterministic in their parameters).
var (
	// C17 returns the ISCAS'85 c17 benchmark.
	C17 = gen.C17
	// RandomTree generates a fanout-free unate circuit.
	RandomTree = gen.RandomTree
	// RandomDAG generates a reconvergent random circuit.
	RandomDAG = gen.RandomDAG
	// AndCone generates the canonical random-pattern-resistant AND cone.
	AndCone = gen.AndCone
	// ParityTree generates a balanced XOR tree.
	ParityTree = gen.ParityTree
	// RippleCarryAdder generates a ripple-carry adder.
	RippleCarryAdder = gen.RippleCarryAdder
	// Comparator generates an equality comparator.
	Comparator = gen.Comparator
	// Decoder generates an n-to-2^n decoder.
	Decoder = gen.Decoder
	// Multiplier generates an array multiplier.
	Multiplier = gen.Multiplier
	// RPResistant embeds resistant AND cones in random glue logic.
	RPResistant = gen.RPResistant
	// BarrelShifter generates a logarithmic barrel shifter.
	BarrelShifter = gen.BarrelShifter
	// ALUSlice generates a small ALU with a 2-bit opcode.
	ALUSlice = gen.ALUSlice
)

// TreeOptions parameterises RandomTree.
type TreeOptions = gen.TreeOptions

// DAGOptions parameterises RandomDAG.
type DAGOptions = gen.DAGOptions
