// c17 ISCAS'85 benchmark, structural Verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;

  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
