// Package g004 is a codelint fixture: impure calls inside a
// deterministic engine package (rule G004). Seeded shows the sanctioned
// explicit-source shape and must stay clean.
package g004

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock: finding.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Roll draws from the global, per-process RNG: finding.
func Roll() int {
	return rand.Intn(6)
}

// Tune reads the environment: finding.
func Tune() string {
	return os.Getenv("G004_TUNE")
}

// Seeded threads an explicit seed: clean.
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}
