//go:build !codelint_excluded_fixture

// The build constraint on this file is SATISFIED — only the _test.go
// suffix keeps it out, proving the test-file skip is independent of
// tag evaluation.
package loader

// UseGenerics redeclares the real one: a loader that admitted test
// files whose tags match would fail the type check on it.
func UseGenerics() int { return -2 }
