//go:build codelint_excluded_fixture

// Excluded by a never-satisfied build tag; the loader must not parse
// it, or the UseGenerics redeclaration fails the type check.
package loader

// UseGenerics redeclares the real one: a loader that ignores build
// constraints trips over this immediately.
func UseGenerics() int { return -1 }
