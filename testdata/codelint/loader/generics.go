// Package loader is a loader fixture: generic declarations the type
// checker must instantiate, next to build-tag-excluded and _test-
// suffixed siblings that each redeclare UseGenerics — if the loader
// ever parsed either, type-checking this package would fail on the
// duplicate before any analyzer ran.
package loader

// Pair is a generic key/value cell.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// Keys collects the keys of pairs in order.
func Keys[K comparable, V any](ps []Pair[K, V]) []K {
	out := make([]K, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.Key)
	}
	return out
}

// Sum totals a slice of any integer-kinded type.
func Sum[T ~int | ~int64](xs []T) T {
	var t T
	for _, x := range xs {
		t += x
	}
	return t
}

// UseGenerics instantiates both generics, forcing full resolution.
func UseGenerics() int {
	ps := []Pair[string, int]{{Key: "a", Val: 1}, {Key: "b", Val: 2}}
	return len(Keys(ps)) + int(Sum([]int64{1, 2, 3}))
}
