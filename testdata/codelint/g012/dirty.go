// Package g012 is a codelint fixture: cancellation reachability (rule
// G012). Register wires crunch through a method value, and crunch
// reaches drain through a deferred call — both edge kinds the
// reachability walk must follow. The loops in crunch and drain do
// compound per-iteration work without ever polling: findings. polled
// (per-iteration select on the done channel), step (three-clause
// bounded loop), and Vetted (pinned in ctxLoopAllowlist) must stay
// clean.
package g012

// mux mimics the serve wiring surface.
type mux struct{ routes map[string]func() }

func (m *mux) handle(route string, h func()) { m.routes[route] = h }

// server owns a done channel in the ctx.Done convention.
type server struct {
	done chan struct{}
	buf  []int
}

// Register wires crunch as the "/v1/crunch" handler via a method value.
func Register(m *mux, s *server) {
	m.handle("/v1/crunch", s.crunch)
}

// crunch spins on step without polling: finding.
func (s *server) crunch() {
	defer s.drain()
	s.polled()
	s.Vetted()
	n := 1
	for n > 0 { // finding: unbounded, compound, never polls
		n = s.step()
	}
}

// drain loops over nested per-iteration work without polling: finding.
func (s *server) drain() {
	for s.pending() { // finding: unbounded, nested, never polls
		for i := range s.buf {
			s.buf[i] = 0
		}
	}
}

// polled checks the done channel every iteration: clean.
func (s *server) polled() {
	for s.pending() {
		select {
		case <-s.done:
			return
		default:
		}
		s.step()
	}
}

// Vetted spins without polling but is pinned in ctxLoopAllowlist:
// clean.
func (s *server) Vetted() {
	for s.pending() {
		s.step()
	}
}

// step does one bounded sweep (three-clause loop): clean.
func (s *server) step() int {
	n := 0
	for i := 0; i < len(s.buf); i++ {
		n += s.buf[i]
	}
	return n
}

func (s *server) pending() bool { return len(s.buf) > 0 }
