// Package g010 is a codelint fixture: worker-state sharing (rule G010).
// Guarded and Sharded show the two sanctioned ways workers may write —
// behind one mutex, or into per-worker slots — and must stay clean.
package g010

import "sync"

// Sum races loop-spawned workers over one accumulator: finding.
func Sum(vals []int) int {
	var wg sync.WaitGroup
	total := 0
	for _, v := range vals {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			total += x // finding: unsharded write from a loop-spawned worker
		}(v)
	}
	wg.Wait()
	return total
}

// Flag lets the worker and its spawner race on done: finding.
func Flag(work func()) bool {
	done := false
	finished := make(chan struct{})
	go func() {
		work()
		done = true // finding: done is also written outside the goroutine
		close(finished)
	}()
	done = false
	<-finished
	return done
}

// Guarded serializes worker writes behind a mutex: clean.
func Guarded(vals []int) int {
	var mu sync.Mutex
	var wg sync.WaitGroup
	total := 0
	for _, v := range vals {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			mu.Lock()
			total += x
			mu.Unlock()
		}(v)
	}
	wg.Wait()
	return total
}

// Sharded gives each worker its own result slot: clean.
func Sharded(vals []int) []int {
	out := make([]int, len(vals))
	var wg sync.WaitGroup
	for i := range vals {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = vals[w] * 2
		}(i)
	}
	wg.Wait()
	return out
}
