// Package g013 is a codelint fixture: engine-output purity (rule G013).
// Register's route literal makes score reachable from the handler
// wiring, so its reads of mutable package state (hits) and of the
// process environment are findings. limit (written nowhere outside its
// initializer) and scratch (vetted in mutableStateAllowlist) must stay
// clean.
package g013

import "os"

// hits is written by a reachable function, so it is mutable state.
var hits int

// limit is never written outside its initializer: reads are clean.
var limit = 8

// scratch is mutable but vetted in mutableStateAllowlist: clean.
var scratch []int

// mount records one route the way serve wires its endpoints.
func mount(route string, h func(int) int) map[string]func(int) int {
	return map[string]func(int) int{route: h}
}

// Register wires the fixture's single handler.
func Register() map[string]func(int) int {
	return mount("/v1/score", score)
}

// score folds state outside the cache key into its result: findings.
func score(n int) int {
	hits++                             // finding: write-and-read of mutable package state
	if os.Getenv("SCORE_MODE") != "" { // finding: environment read
		n++
	}
	if n > limit { // clean: immutable after init
		n = limit
	}
	scratch = scratch[:0] // clean: vetted scratch buffer
	scratch = append(scratch, n)
	return n + scratch[0] + hits // finding: mutable-state read
}
