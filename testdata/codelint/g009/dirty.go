// Package g009 is a codelint fixture: lock discipline (rule G009). Bump
// shows the sanctioned lock/defer-unlock critical section and must stay
// clean.
package g009

import (
	"sync"

	"repro/internal/implic"
)

// Counter pairs a mutex with the state it guards.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Leak locks and never unlocks: finding.
func (c *Counter) Leak() int {
	c.mu.Lock() // finding: no matching Unlock in this function
	return c.n
}

// Stall blocks on a channel while holding the lock: finding.
func (c *Counter) Stall(ch chan int) {
	c.mu.Lock()
	ch <- c.n // finding: channel send under c.mu
	c.mu.Unlock()
}

// Engine runs engine work while holding the lock: finding.
func (c *Counter) Engine() implic.Lit {
	c.mu.Lock()
	defer c.mu.Unlock()
	return implic.MkLit(c.n, true) // finding: engine call under c.mu
}

// Clone copies the mutex-bearing struct by value: finding.
func Clone(c *Counter) Counter {
	dup := *c // finding: copies Counter's sync.Mutex
	return dup
}

// Bump is the sanctioned shape: clean.
func (c *Counter) Bump() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}
