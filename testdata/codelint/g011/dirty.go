// Package g011 is a codelint fixture: cache-key soundness (rule G011).
// The route literal in Register marks parseThing as a handler root; its
// first return operand makes thingOptions the canonicalized (keyed)
// struct, and EngineOpts is pinned in engineOptionStructs. Depth shows
// the sound shape end to end — keyed request field, tainted feed,
// engine read — and must stay clean, as must Tuning (vetted in
// cacheKeyFieldAllowlist) and TimeoutMS (zero-stripped and vetted in
// keyExemptFields).
package g011

// EngineOpts mirrors an engine option struct handed across the serve
// boundary.
type EngineOpts struct {
	Depth  int  // fed from keyed request data and read: clean
	Boost  int  // finding: read by the engine but never fed
	Trace  bool // finding: fed from keyed data but never read
	Tuning int  // read at its zero default, vetted: clean
}

// thingOptions is the canonicalized request option struct.
type thingOptions struct {
	Depth     int    `json:"depth"` // keyed and read: clean
	Width     int    `json:"width"` // finding: hashed but never read
	Label     string `json:"-"`     // finding: excluded from the key but read
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// mount records one route the way serve wires its endpoints; the
// "/v1/..." literal is what marks the parse argument as a root.
func mount(route string, parse func(int) (thingOptions, int)) map[string]func(int) (thingOptions, int) {
	return map[string]func(int) (thingOptions, int){route: parse}
}

// Register wires the fixture's single handler.
func Register() map[string]func(int) (thingOptions, int) {
	return mount("/v1/thing", parseThing)
}

// parseThing decodes, defaults, and strips the request options, then
// runs the engine — the shape of a serve parse function.
func parseThing(depth int) (thingOptions, int) {
	opts := thingOptions{Depth: depth, Width: 8, Label: "thing"}
	timeout := opts.TimeoutMS
	opts.TimeoutMS = 0
	return opts, timeout + runThing(buildOpts(opts), opts.Label)
}

// buildOpts is the serve-to-engine feed site.
func buildOpts(o thingOptions) EngineOpts {
	return EngineOpts{Depth: o.Depth, Trace: o.Depth > 2}
}

// runThing is the engine: what it reads is what must be keyed.
func runThing(o EngineOpts, label string) int {
	n := o.Depth + o.Boost + o.Tuning
	if label != "" {
		n++
	}
	return n
}
