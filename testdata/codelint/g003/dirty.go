// Package g003 is a codelint fixture: engine entry points that drop or
// shadow their context.Context (rule G003). Compat shows the sanctioned
// single-return wrapper shape and must stay clean.
package g003

import "context"

// Search receives a context and never uses it: finding.
func Search(ctx context.Context, n int) int {
	return n * 2
}

// Run receives a context but spawns a fresh root, severing
// cancellation: findings (dropped parameter and fresh root).
func Run(ctx context.Context, n int) int {
	return step(context.Background(), n)
}

// Launch builds a root context outside the wrapper shape: finding.
func Launch(n int) int {
	c := context.Background()
	return step(c, n)
}

// Compat is the sanctioned compat wrapper: clean.
func Compat(n int) int {
	return step(context.Background(), n)
}

// step consumes its context properly: clean.
func step(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
		return n
	}
}
