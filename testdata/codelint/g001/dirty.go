// Package g001 is a codelint fixture: map iteration order leaking into
// output-sensitive sinks (rule G001). SortedKeys shows the sanctioned
// collect-then-sort shape and must stay clean.
package g001

import (
	"fmt"
	"io"
	"sort"
)

// Emit writes entries in map order: nondeterministic bytes.
func Emit(w io.Writer, counts map[string]int) {
	for k, v := range counts {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Keys collects map keys and never sorts them.
func Keys(counts map[string]int) []string {
	var out []string
	for k := range counts {
		out = append(out, k)
	}
	return out
}

// Join concatenates keys in map order.
func Join(counts map[string]int) string {
	s := ""
	for k := range counts {
		s += k
	}
	return s
}

// SortedKeys collects then sorts: clean.
func SortedKeys(counts map[string]int) []string {
	out := make([]string, 0, len(counts))
	for k := range counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total folds order-independently with no sink: clean.
func Total(counts map[string]int) int {
	n := 0
	for _, v := range counts {
		n += v
	}
	return n
}
