// Package g016 is a codelint fixture: streaming-handler discipline
// (rule G016). BareAssert asserts http.Flusher without the comma-ok
// form, StreamNoFlush never flushes its NDJSON loop,
// StreamOptionalFlush gates the flush on a nil-able Flusher,
// WriteAfterError and DoubleHeader keep writing after the response
// was completed, LeakBody never closes a client response body, and
// EarlyReturnBody leaks it on the status check: findings.
// StreamSolid (ResponseController flush), GuardedError (return after
// the error write), and FetchJSON (deferred Body.Close) must stay
// clean; fail is the helper shape the header-writer summary detects.
package g016

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// BareAssert panics as soon as middleware wraps the writer: finding.
func BareAssert(w http.ResponseWriter, r *http.Request) {
	fl := w.(http.Flusher)
	fl.Flush()
	fmt.Fprintln(w, "done")
}

// StreamNoFlush writes an NDJSON stream but never flushes, so clients
// see nothing until the handler returns: finding at the loop.
func StreamNoFlush(w http.ResponseWriter, events <-chan int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for ev := range events {
		_ = enc.Encode(ev)
	}
}

// StreamOptionalFlush flushes only when the comma-ok Flusher is
// non-nil, so a wrapped writer silently stops streaming: finding at
// the flush.
func StreamOptionalFlush(w http.ResponseWriter, events <-chan int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for ev := range events {
		_ = enc.Encode(ev)
		if fl != nil {
			fl.Flush()
		}
	}
}

// StreamSolid flushes through the ResponseController, which reaches
// through wrapped writers: clean.
func StreamSolid(w http.ResponseWriter, events <-chan int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	for ev := range events {
		_ = enc.Encode(ev)
		_ = rc.Flush()
	}
}

// WriteAfterError keeps writing after fail already completed the
// response: finding at the write.
func WriteAfterError(w http.ResponseWriter, ok bool) {
	if !ok {
		fail(w, http.StatusBadRequest, "bad input")
		fmt.Fprintln(w, "ignored by the client")
	}
}

// DoubleHeader sends two status lines: finding at the second.
func DoubleHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusAccepted)
	w.WriteHeader(http.StatusOK)
}

// GuardedError returns right after the error response: clean.
func GuardedError(w http.ResponseWriter, ok bool) {
	if !ok {
		fail(w, http.StatusBadRequest, "bad input")
		return
	}
	fmt.Fprintln(w, "ok")
}

// fail completes an error response; the header-writer summary records
// that it WriteHeaders-and-writes its ResponseWriter parameter.
func fail(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(msg)
}

// LeakBody fetches and never closes the body, leaking the connection:
// finding, with a suggested fix inserting the defer.
func LeakBody(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// EarlyReturnBody closes the body on the happy path but leaks it on
// the status check: finding.
func EarlyReturnBody(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("unexpected status %d", resp.StatusCode)
	}
	_ = resp.Body.Close()
	return nil
}

// FetchJSON closes the body on every path: clean.
func FetchJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
