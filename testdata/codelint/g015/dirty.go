// Package g015 is a codelint fixture: durability discipline (rule
// G015), active here because the package is pinned in
// durabilityPackages. InPlace tears state with os.WriteFile,
// RenameUnsynced installs a blob that was never fsynced,
// RenameNoDirSync forgets the directory sync after the rename, and
// AppendNoSync appends journal records that may never reach disk:
// findings. AppendSynced and InstallBlob walk the full write→Sync→
// Close→Rename→syncDir discipline and must stay clean; syncDir itself
// is the open-and-Sync shape the directory-sync summary detects.
package g015

import (
	"os"
	"path/filepath"
)

// InPlace overwrites state where it lives; a crash mid-write tears
// the old copy: finding.
func InPlace(path string, state []byte) {
	_ = os.WriteFile(path, state, 0o644)
}

// RenameUnsynced installs a temp file that was never fsynced in this
// frame: finding. The directory sync after the rename is present so
// only the missing file sync fires.
func RenameUnsynced(tmp, final string) {
	_ = os.Rename(tmp, final)
	syncDir(filepath.Dir(final))
}

// RenameNoDirSync syncs the blob but never the directory, so a crash
// can forget the installed name: finding.
func RenameNoDirSync(tmp, final string, state []byte) error {
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(state); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// AppendNoSync appends a journal record without ever syncing the
// file: finding at the open.
func AppendNoSync(path string, rec []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(rec); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// AppendSynced is the journal discipline — write, Sync, Close: clean.
func AppendSynced(path string, rec []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(rec); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// InstallBlob is the full tmp→fsync→rename→dir-sync discipline: clean.
func InstallBlob(dir, name string, state []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(state); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename inside it survives a crash;
// the dirSyncSummaries fixpoint recognizes this open-and-Sync shape.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
