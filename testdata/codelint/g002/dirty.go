// Command g002 is a codelint fixture: process exits that escape func
// main or bypass the internal/cli exit-code contract (rule G002).
package main

import (
	"log"
	"os"
)

// bail exits from library-shaped code: two findings.
func bail(err error) {
	if err != nil {
		log.Fatal(err)
	}
	os.Exit(3)
}

func main() {
	if len(os.Args) > 1 {
		bail(nil)
		os.Exit(1) // literal nonzero code bypasses the contract
	}
	os.Exit(0) // clean: success is always 0
}
