// Package g006 is a codelint fixture: exported symbols missing
// leading-name godoc comments (rule G006). Threshold, the Grouped
// block, Planner, and the unexported helper must stay clean.
package g006

// Threshold is documented with the leading-name form: clean.
const Threshold = 42

// The per-region budget cap — the first word is not the symbol name:
// finding.
const Budget = 8

// Exported constants may share one group comment: clean.
const (
	GroupedA = 1
	GroupedB = 2
)

var MaxDepth = 16 // trailing comments are not doc comments: finding

// Planner is an exported type: documented, clean.
type Planner struct{}

func (Planner) Solve() int { return 0 } // undocumented exported method: finding

func Seeded(seed int64) int64 { return seed } // undocumented exported function: finding

// helper is unexported: no doc required, clean.
func helper() {}
