// Package g008 is a codelint fixture: goroutine discipline (rule G008).
// Joined shows the sanctioned worker shape — joined, cancellable, loop
// variable passed as an argument — and must stay clean.
package g008

import (
	"context"
	"sync"
)

// Fire spawns a goroutine nothing ever joins: finding.
func Fire(sink chan<- int, n int) {
	go func() { // finding: never joined
		sink <- n * 2
	}()
}

// Ignore spawns a worker that never observes the context in scope:
// finding.
func Ignore(ctx context.Context, ch chan int) int {
	if ctx.Err() != nil {
		return 0
	}
	go func() { // finding: ctx in scope but unobserved
		ch <- 1
	}()
	return <-ch
}

// Capture lets its workers capture the loop variable instead of taking
// it as an argument: finding.
func Capture(ctx context.Context, vals []int, sink chan<- int) {
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func() { // finding: captures loop variable v
			defer wg.Done()
			if ctx.Err() == nil {
				sink <- v
			}
		}()
	}
	wg.Wait()
}

// Joined is the sanctioned worker shape: clean.
func Joined(ctx context.Context, vals []int) []int {
	out := make([]int, len(vals))
	var wg sync.WaitGroup
	for i := range vals {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			out[w] = vals[w] * 2
		}(i)
	}
	wg.Wait()
	return out
}

// Vetted is the constructor shape the goroutineAllowlist covers: the
// spawn calls Done on a WaitGroup some other method Waits on, so no
// join is visible here. The allowlist entry keeps it clean while its
// unlisted neighbors above still fire.
func Vetted(wg *sync.WaitGroup, sink chan<- int) {
	wg.Add(1)
	go func() { // allowlisted: joined by the caller's Close-analog
		defer wg.Done()
		sink <- 1
	}()
}
