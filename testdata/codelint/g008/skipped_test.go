// This _test.go file must be invisible to the golint loader. If it ever
// gets loaded, Leaky's unjoined spawn adds a G008 finding the golden
// does not carry, and the loader tests fail.
package g008

// Leaky spawns a goroutine nothing joins.
func Leaky(sink chan<- int) {
	go func() {
		sink <- 1
	}()
}
