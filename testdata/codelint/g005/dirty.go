// Package g005 is a codelint fixture: error-hygiene defects (rule
// G005). WrapWell shows %w wrapping and must stay clean.
package g005

import (
	"fmt"
	"os"
)

// Cleanup silently discards the removal error: finding (warning).
func Cleanup(path string) {
	os.Remove(path)
}

// Wrap interpolates a live error without %w: finding (info).
func Wrap(err error) error {
	return fmt.Errorf("plan failed: %v", err)
}

// WrapWell keeps the chain: clean.
func WrapWell(err error) error {
	return fmt.Errorf("plan failed: %w", err)
}

// CleanupRecorded discards visibly: clean.
func CleanupRecorded(path string) {
	_ = os.Remove(path)
}
