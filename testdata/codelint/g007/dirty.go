// Package g007 is a codelint fixture: allocation inside a measured hot
// loop (rule G007). Hot is pinned as a measured-loop entry in
// hotLoopEntries; Warm is pinned in hotAllocAllowlist, so its
// allocation stays quiet while step's fires.
package g007

// Hot is the fixture's measured-loop entry: only sites inside its loop
// (and in what the loop calls) are hot.
func Hot(vals []int) int {
	acc := make([]int, 0, len(vals)) // clean: setup phase, before the loop
	total := 0
	for _, v := range vals {
		buf := make([]int, 4) // finding: allocation per iteration
		buf[0] = v
		total += step(buf)
		total += warmup(v)
		acc = append(acc, v) // clean: self-append reuse idiom
	}
	return total + len(acc)
}

// step runs per iteration of Hot's loop, so its whole body is hot.
func step(buf []int) int {
	if len(buf) == 0 {
		cold := make([]int, 1) // clean: allocation on a cold panic path
		panic(cold[0])
	}
	tmp := []int{buf[0], 1} // finding: slice literal reached from the loop
	return tmp[0] + tmp[1]
}

// warmup is reached from the loop too, but delegates to the vetted
// Warm.
func warmup(v int) int {
	return Warm(v)
}

// Warm allocates on the hot path but is pinned in hotAllocAllowlist:
// clean, and the golden proves the allowlist is load-bearing.
func Warm(v int) int {
	table := make([]int, 8)
	table[0] = v
	return table[0]
}
