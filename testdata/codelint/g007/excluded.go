//go:build golint_fixture_excluded

// This file is excluded by its build tag. If the loader ever stops
// honoring build constraints it will be parsed, and the duplicate Hot
// below turns into a type-check error the loader tests catch.
package g007

// Hot would collide with the real entry if this file were loaded.
func Hot(vals []int) int {
	out := make([]int, len(vals))
	copy(out, vals)
	return len(out)
}
