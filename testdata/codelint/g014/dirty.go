// Package g014 is a codelint fixture: resource lifecycle (rule G014).
// LeakFile never closes its file, EarlyReturn leaks on the strict
// path, HelperRelease proves the interprocedural release summary (its
// close goes through closeQuietly) but still leaks on its own early
// return, DropCancel discards a cancel func, and LeakTicker never
// stops its ticker: findings. DeferClose, RunWithTimeout, NewOwner
// (ownership moves into the composite literal), TransferOwnership
// (plain return, never assigned), and Vetted (pinned in
// resourceOwnerAllowlist) must stay clean.
package g014

import (
	"context"
	"errors"
	"net"
	"os"
	"time"
)

// LeakFile opens a file and never releases it: finding, with a
// suggested fix inserting the defer after the error check.
func LeakFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	probe(f.Name())
	return nil
}

// EarlyReturn closes on the happy path but leaks on the validation
// return between the acquisition and the close: finding.
func EarlyReturn(path string, strict bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if strict {
		return errors.New("strict mode rejects the input")
	}
	_ = f.Close()
	return nil
}

// closeQuietly releases its parameter; the module release summary
// records it so passing a file here counts as a release, not an
// ownership escape.
func closeQuietly(f *os.File) {
	_ = f.Close()
}

// HelperRelease closes through closeQuietly — without the
// interprocedural summary that call would read as an ownership
// transfer and silence the rule — yet the strict return before it
// still leaks: finding.
func HelperRelease(path string, strict bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if strict {
		return errors.New("strict mode rejects the input")
	}
	closeQuietly(f)
	return nil
}

// DropCancel discards the cancel func, leaking the derived context's
// resources: finding.
func DropCancel(ctx context.Context) context.Context {
	dctx, _ := context.WithCancel(ctx)
	return dctx
}

// LeakTicker never stops the ticker, leaking its goroutine: finding,
// with a suggested fix inserting the defer.
func LeakTicker(d time.Duration) {
	t := time.NewTicker(d)
	waitTick(t.C)
}

// DeferClose is the canonical clean shape: defer directly after the
// error check.
func DeferClose(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return sizeOf(f)
}

// RunWithTimeout defers its cancel func: clean.
func RunWithTimeout(ctx context.Context, d time.Duration) error {
	tctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	return wait(tctx)
}

// owner keeps a listener alive for its own lifetime.
type owner struct{ ln net.Listener }

// NewOwner hands the listener to the returned owner: the composite
// literal is an ownership transfer, so the function stays clean.
func NewOwner(addr string) (*owner, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &owner{ln: ln}, nil
}

// TransferOwnership returns the acquisition directly — never bound to
// a local, so there is nothing to track: clean.
func TransferOwnership(path string) (*os.File, error) {
	return os.Open(path)
}

// Vetted mirrors LeakFile exactly but is pinned in
// resourceOwnerAllowlist: the golden proves the allowlist silences a
// listed function while its neighbors still fire.
func Vetted(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	probe(f.Name())
	return nil
}

// probe stands in for arbitrary use of an open resource.
func probe(string) {}

// sizeOf reads a file's size through its stat.
func sizeOf(f *os.File) (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// wait blocks until the context ends.
func wait(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// waitTick receives one tick.
func waitTick(c <-chan time.Time) {
	<-c
}
