package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// ExamplePlanCuts shows the paper's core result: optimal insertion of
// full test points into a fanout-free circuit by dynamic programming.
func ExamplePlanCuts() {
	// AND(AND(a,b), AND(c,d)): 5 tests minimum without test points.
	b := repro.NewBuilder("two")
	a := b.Input("a")
	x := b.Input("b")
	cc := b.Input("c")
	d := b.Input("d")
	g1 := b.AndGate("g1", a, x)
	g2 := b.AndGate("g2", cc, d)
	b.MarkOutput(b.AndGate("root", g1, g2))
	c := b.MustBuild()

	for k := 0; k <= 2; k++ {
		plan, err := repro.PlanCuts(c, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K=%d: %d tests\n", k, plan.MaxCost)
	}
	// Output:
	// K=0: 5 tests
	// K=1: 4 tests
	// K=2: 3 tests
}

// ExampleSimulate fault-simulates c17 exhaustively: every collapsed
// stuck-at fault is detected.
func ExampleSimulate() {
	c := repro.C17()
	faults := repro.Faults(c)
	res, err := repro.Simulate(c, faults, repro.NewCounter(5),
		repro.SimOptions{MaxPatterns: 32, DropFaults: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d/%d faults detected\n", len(res.FirstDetect), len(faults))
	// Output:
	// 22/22 faults detected
}

// ExampleComputeTestCounts evaluates the Hayes–Friedman recurrences: a
// width-8 AND cone needs exactly 9 tests.
func ExampleComputeTestCounts() {
	c := repro.AndCone(8)
	ct, err := repro.ComputeTestCounts(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal complete test set: %d tests\n", ct.CircuitTests())
	// Output:
	// minimal complete test set: 9 tests
}

// ExampleGenerateTests runs PODEM over a circuit with a redundant gate:
// the undetectable fault is proven redundant, the rest get vectors.
func ExampleGenerateTests() {
	// z = OR(a, AND(b, NOT b)) — the AND is constant 0.
	b := repro.NewBuilder("red")
	a := b.Input("a")
	x := b.Input("b")
	nb := b.NotGate("nb", x)
	g := b.AndGate("g", x, nb)
	b.MarkOutput(b.OrGate("z", a, g))
	c := b.MustBuild()

	ts, err := repro.GenerateTests(c, repro.Faults(c), repro.ATPGOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vectors: %d, redundant faults: %d\n", len(ts.Vectors), len(ts.Redundant))
	// Output:
	// vectors: 3, redundant faults: 3
}

// ExampleEquivalent proves two netlists compute the same function.
func ExampleEquivalent() {
	c := repro.RippleCarryAdder(3)
	optimized, _, err := repro.Optimize(c)
	if err != nil {
		log.Fatal(err)
	}
	same, _, err := repro.Equivalent(c, optimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalent after optimization:", same)
	// Output:
	// equivalent after optimization: true
}
