// Command tpi plans and inserts test points into a combinational circuit.
//
// Modes:
//
//	-mode cuts    P1: full test points minimising the minimax test count
//	              (fanout-free circuits; exact DP, or -planner greedy)
//	-mode observe P2: observation points maximising faults over -dth
//	-mode hybrid  control points + observation points, then fault
//	              simulation before/after
//
// Examples:
//
//	tpi -gen tree:leaves=100 -mode cuts -k 6
//	tpi -gen rpr:cones=3,width=14,glue=120 -mode hybrid -cp 4 -op 6
//	tpi -bench testdata/c17.bench -mode observe -k 2 -dth 0.01
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/netlist"
	"repro/internal/pattern"
	"repro/internal/tpi"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "input .bench netlist")
		genSpec   = flag.String("gen", "", "generator spec (see internal/cli)")
		mode      = flag.String("mode", "hybrid", "cuts | observe | hybrid")
		planner   = flag.String("planner", "dp", "dp | greedy | random (cuts/observe modes)")
		k         = flag.Int("k", 4, "test point budget (cuts/observe modes)")
		nCP       = flag.Int("cp", 4, "control point budget (hybrid mode)")
		nOP       = flag.Int("op", 6, "observation point budget (hybrid mode)")
		dth       = flag.Float64("dth", 0, "detection probability threshold (0 = 4/patterns)")
		patterns  = flag.Int("patterns", 32768, "random patterns for validation")
		seed      = flag.Uint64("seed", 0xbadc0de, "LFSR seed for validation")
		outPath   = flag.String("o", "", "write the modified circuit as .bench")
		doLint    = flag.Bool("lint", false, "statically validate the input circuit and reject on lint errors")
		timeout   = flag.Duration("timeout", 0, "abort planning/simulation after this duration (0 = none; expiry exits 3)")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *benchPath, *genSpec, *mode, *planner, *k, *nCP, *nOP, *dth, *patterns, *seed, *outPath, *doLint); err != nil {
		fmt.Fprintln(os.Stderr, "tpi:", err)
		code := cli.ExitCode(err)
		if code == cli.ExitDeadline {
			fmt.Fprintln(os.Stderr, "tpi: -timeout expired; any results above are partial")
		}
		os.Exit(code)
	}
}

func run(ctx context.Context, benchPath, genSpec, mode, planner string, k, nCP, nOP int, dth float64, patterns int, seed uint64, outPath string, doLint bool) error {
	c, err := cli.LoadCircuitChecked(benchPath, genSpec, doLint, os.Stderr)
	if err != nil {
		return err
	}
	fmt.Println(c)
	if dth == 0 {
		dth = 4.0 / float64(patterns)
	}
	faults := fault.CollapsedUniverse(c)
	fmt.Printf("collapsed faults: %d\n", len(faults))

	var modified *netlist.Circuit
	switch mode {
	case "cuts":
		var plan *tpi.CutPlan
		switch planner {
		case "dp":
			plan, err = tpi.PlanCutsDPContext(ctx, c, k)
		case "greedy":
			plan, err = tpi.PlanCutsGreedy(c, k)
		case "random":
			plan, err = tpi.PlanCutsRandom(c, k, int64(seed))
		default:
			return fmt.Errorf("unknown planner %q", planner)
		}
		if err != nil {
			return err
		}
		fmt.Printf("base test count: %d\n", plan.BaseCost)
		fmt.Printf("after %d cut(s): %d (states visited: %d)\n", len(plan.Cuts), plan.MaxCost, plan.StatesVisited)
		for _, s := range plan.Cuts {
			fmt.Printf("  cut at %s\n", c.GateName(s))
		}
		modified, err = c.InsertTestPoints(plan.TestPoints())
		if err != nil {
			return err
		}
	case "observe":
		var plan *tpi.OPPlan
		switch planner {
		case "dp":
			plan, err = tpi.PlanObservationPointsDPContext(ctx, c, faults, k, dth, tpi.OPOptions{})
		case "greedy":
			plan, err = tpi.PlanObservationPointsGreedy(c, faults, k, dth, tpi.OPOptions{})
		case "random":
			plan, err = tpi.PlanObservationPointsRandom(c, faults, k, dth, int64(seed), tpi.OPOptions{})
		default:
			return fmt.Errorf("unknown planner %q", planner)
		}
		if err != nil {
			return err
		}
		fmt.Printf("faults over threshold %.2e: %d/%d before, %d/%d after\n",
			dth, plan.CoveredBefore, plan.TotalFaults, plan.CoveredAfter, plan.TotalFaults)
		for _, s := range plan.Points {
			fmt.Printf("  observe %s\n", c.GateName(s))
		}
		modified, err = c.InsertTestPoints(plan.TestPoints())
		if err != nil {
			return err
		}
		if err := report(ctx, c, modified, faults, patterns, seed); err != nil {
			return err
		}
	case "hybrid":
		plan, err := tpi.PlanHybridContext(ctx, c, faults, nCP, nOP, dth, tpi.CPOptions{}, tpi.OPOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("control points: %d, observation points: %d\n", len(plan.Control.Points), len(plan.Observe.Points))
		for _, p := range plan.Control.Points {
			fmt.Printf("  %s at signal %d\n", p.Kind, p.Signal)
		}
		for _, s := range plan.Observe.Points {
			fmt.Printf("  observe signal %d\n", s)
		}
		modified = plan.Modified
		if err := report(ctx, c, modified, faults, patterns, seed); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	if outPath != "" {
		if err := cli.WriteFile(outPath, func(w io.Writer) error {
			return writeBench(w, modified)
		}); err != nil {
			return err
		}
		fmt.Printf("modified circuit written to %s\n", outPath)
	}
	return nil
}

// report fault-simulates original and modified circuits and prints the
// coverage uplift.
func report(ctx context.Context, orig, mod *netlist.Circuit, faults []fault.Fault, patterns int, seed uint64) error {
	before, err := fsim.RunContext(ctx, orig, faults, pattern.NewLFSR(seed), fsim.Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		return err
	}
	after, err := fsim.RunContext(ctx, mod, faults, pattern.NewLFSR(seed), fsim.Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		return err
	}
	fmt.Printf("fault coverage @%d patterns: %.4f -> %.4f (undetected %d -> %d)\n",
		patterns, before.Coverage(), after.Coverage(),
		len(faults)-len(before.FirstDetect), len(faults)-len(after.FirstDetect))
	return nil
}
