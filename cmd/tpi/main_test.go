package main

import (
	"context"
	"path/filepath"
	"testing"
)

func TestRunModes(t *testing.T) {
	cases := []struct {
		mode, planner string
	}{
		{"cuts", "dp"},
		{"cuts", "greedy"},
		{"cuts", "random"},
		{"observe", "dp"},
		{"observe", "greedy"},
		{"observe", "random"},
		{"hybrid", "dp"},
	}
	for _, tc := range cases {
		gen := "tree:seed=1,leaves=12"
		if tc.mode != "cuts" {
			gen = "cone:width=8"
		}
		out := filepath.Join(t.TempDir(), "out.bench")
		if err := run(context.Background(), "", gen, tc.mode, tc.planner, 2, 1, 1, 0, 256, 1, out, false); err != nil {
			t.Errorf("mode %s planner %s: %v", tc.mode, tc.planner, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "", "", "cuts", "dp", 2, 0, 0, 0, 64, 1, "", false); err == nil {
		t.Error("expected error with no circuit source")
	}
	if err := run(context.Background(), "", "c17", "frob", "dp", 2, 0, 0, 0, 64, 1, "", false); err == nil {
		t.Error("expected error for unknown mode")
	}
	if err := run(context.Background(), "", "c17", "cuts", "frob", 2, 0, 0, 0, 64, 1, "", false); err == nil {
		t.Error("expected error for unknown planner")
	}
	if err := run(context.Background(), "", "c17", "cuts", "dp", 2, 0, 0, 0, 64, 1, "", false); err == nil {
		t.Error("expected error planning cuts on reconvergent c17")
	}
}
