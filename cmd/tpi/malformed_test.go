package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// malformedBenchCases is the shared table of broken .bench inputs every
// tool must reject with a non-nil error (main turns that into a non-zero
// exit on stderr).
var malformedBenchCases = []struct {
	name, src string
}{
	{"garbage", "INPUT(a\nOUTPUT z)\nnonsense\n"},
	{"unknown-gate", "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n"},
	{"undefined-fanin", "INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n"},
	{"no-outputs", "INPUT(a)\nz = NOT(a)\n"},
	{"combinational-loop", "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)\n"},
}

func writeBenchFile(t *testing.T, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bad.bench")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMalformedBenchRejected(t *testing.T) {
	for _, tc := range malformedBenchCases {
		t.Run(tc.name, func(t *testing.T) {
			p := writeBenchFile(t, tc.src)
			if err := run(context.Background(), p, "", "hybrid", "dp", 2, 1, 1, 0, 64, 1, "", false); err == nil {
				t.Errorf("expected error for %s input", tc.name)
			}
		})
	}
}

func TestLintRejectsStuckCircuit(t *testing.T) {
	p := writeBenchFile(t, "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nna = NOT(a)\nk = AND(a, na)\nz = OR(b, k)\n")
	if err := run(context.Background(), p, "", "hybrid", "dp", 2, 1, 1, 0, 64, 1, "", true); err == nil {
		t.Error("expected -lint to reject the stuck-constant circuit")
	}
	if err := run(context.Background(), p, "", "hybrid", "dp", 2, 1, 1, 0, 64, 1, "", false); err != nil {
		t.Errorf("without -lint the circuit should still load: %v", err)
	}
}
