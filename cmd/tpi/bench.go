package main

import (
	"io"

	"repro/internal/bench"
	"repro/internal/netlist"
)

// writeBench emits the circuit in .bench format.
func writeBench(w io.Writer, c *netlist.Circuit) error {
	return bench.Write(w, c)
}
