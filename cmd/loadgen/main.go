// Command loadgen drives a running serve instance with synthetic
// engine requests and reports throughput and latency percentiles per
// concurrency level. It is the measurement half of the async-jobs
// story: sweeping concurrency past the worker pool and job queue shows
// where the server starts shedding load with 429s instead of stalling
// requests.
//
// Each request posts a generated circuit ("dag:gates=N,seed=S") to one
// engine endpoint, cycling through -seeds distinct seeds — one seed
// exercises the warmed result cache, many seeds force engine runs. A
// -async fraction of the requests submit with "mode":"async" and then
// follow the job's events stream to its terminal state, so an async
// request's latency spans submission through completion, exactly like
// a sync request's. Submissions refused with 429 (full job queue) are
// counted separately from errors: back-pressure is the bounded queue
// working, not a failure.
//
// Output is a text table by default, or the canonical JSON document
// with -json. Exit codes follow the internal/cli contract: 0 when the
// sweep ran (however the server behaved), 1 when any request failed
// outright (transport error, 5xx, or a job that did not finish), 2 on
// bad flags.
//
// Examples:
//
//	loadgen -url http://localhost:8080
//	loadgen -url http://localhost:8080 -concurrency 1,8,64 -async 1 -seeds 64
//	loadgen -url http://localhost:8080 -endpoint /v1/faultsim -options '{"patterns":4096}' -json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cli"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.url, "url", "", "base URL of the serve instance (required, e.g. http://localhost:8080)")
	flag.StringVar(&cfg.endpoint, "endpoint", "/v1/plan", "engine endpoint to load (/v1/plan, /v1/faultsim, /v1/atpg)")
	flag.StringVar(&cfg.options, "options", "", `JSON "options" object per request (default: per-endpoint canonical options)`)
	flag.IntVar(&cfg.gates, "gates", 120, "generated circuit size per request")
	flag.IntVar(&cfg.seeds, "seeds", 16, "distinct generator seeds cycled across requests (1 = fully cached after warmup)")
	flag.IntVar(&cfg.requests, "requests", 100, "requests per concurrency level")
	flag.StringVar(&cfg.concurrency, "concurrency", "1,4,16", "comma-separated concurrency sweep")
	flag.Float64Var(&cfg.asyncFrac, "async", 0, "fraction of requests submitted as async jobs (0..1)")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "per-request client deadline (covers an async job's whole events stream)")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the JSON report instead of the text table")
	flag.Parse()

	failed, err := run(os.Stdout, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(cli.ExitCode(err))
	}
	if failed {
		os.Exit(cli.ExitFailure)
	}
}

// config gathers one invocation's settings.
type config struct {
	url         string
	endpoint    string
	options     string
	gates       int
	seeds       int
	requests    int
	concurrency string
	asyncFrac   float64
	timeout     time.Duration
	jsonOut     bool
}

// levels parses the -concurrency sweep.
func (c config) levels() ([]int, error) {
	var out []int
	for _, part := range strings.Split(c.concurrency, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, cli.Usage(fmt.Errorf("-concurrency must be positive integers (got %q)", part))
		}
		out = append(out, n)
	}
	return out, nil
}

// validate rejects configurations the sweep cannot run with; the
// errors carry the usage exit code (2) through cli.ExitCode.
func (c config) validate() error {
	switch {
	case c.url == "":
		return cli.Usage(errors.New("-url is required"))
	case !strings.HasPrefix(c.endpoint, "/"):
		return cli.Usage(fmt.Errorf("-endpoint must start with / (got %q)", c.endpoint))
	case c.gates <= 0:
		return cli.Usage(fmt.Errorf("-gates must be positive (got %d)", c.gates))
	case c.seeds <= 0:
		return cli.Usage(fmt.Errorf("-seeds must be positive (got %d)", c.seeds))
	case c.requests <= 0:
		return cli.Usage(fmt.Errorf("-requests must be positive (got %d)", c.requests))
	case c.asyncFrac < 0 || c.asyncFrac > 1:
		return cli.Usage(fmt.Errorf("-async must be in [0,1] (got %g)", c.asyncFrac))
	case c.timeout <= 0:
		return cli.Usage(fmt.Errorf("-timeout must be positive (got %v)", c.timeout))
	}
	if c.options != "" && !json.Valid([]byte(c.options)) {
		return cli.Usage(fmt.Errorf("-options is not valid JSON: %q", c.options))
	}
	return nil
}

// defaultOptions are the canonical per-endpoint request options used
// when -options is empty, chosen to match the committed benchmark
// workloads.
func defaultOptions(endpoint string) string {
	switch endpoint {
	case "/v1/plan":
		return `{"planner":"observe"}`
	case "/v1/faultsim":
		return `{"patterns":1024}`
	default:
		return "{}"
	}
}

// report is the canonical JSON document loadgen emits.
type report struct {
	Schema   string        `json:"schema"`
	Target   string        `json:"target"`
	Endpoint string        `json:"endpoint"`
	Gates    int           `json:"gates"`
	Seeds    int           `json:"seeds"`
	Async    float64       `json:"async_fraction"`
	Levels   []levelResult `json:"levels"`
}

// schemaName versions the report document.
const schemaName = "repro/loadgen/v1"

// levelResult is one concurrency level's measurements. Rejected counts
// 429 submissions (bounded-queue back-pressure); Errors counts real
// failures — transport errors, unexpected statuses, jobs that ended in
// any state but done.
type levelResult struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Rejected    int     `json:"rejected_429"`
	Errors      int     `json:"errors"`
	WallMS      float64 `json:"wall_ms"`
	ReqPerSec   float64 `json:"req_per_sec"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
}

// run executes the sweep and reports whether any request failed.
func run(stdout io.Writer, cfg config) (failed bool, err error) {
	if err := cfg.validate(); err != nil {
		return false, err
	}
	levels, err := cfg.levels()
	if err != nil {
		return false, err
	}
	opts := cfg.options
	if opts == "" {
		opts = defaultOptions(cfg.endpoint)
	}
	client := &http.Client{Timeout: cfg.timeout}
	rep := report{
		Schema:   schemaName,
		Target:   strings.TrimSuffix(cfg.url, "/"),
		Endpoint: cfg.endpoint,
		Gates:    cfg.gates,
		Seeds:    cfg.seeds,
		Async:    cfg.asyncFrac,
	}
	for _, level := range levels {
		res := runLevel(client, cfg, rep.Target, opts, level)
		rep.Levels = append(rep.Levels, res)
		if res.Errors > 0 {
			failed = true
		}
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return failed, enc.Encode(rep)
	}
	return failed, writeTable(stdout, rep)
}

// runLevel fires cfg.requests requests at the target with the given
// number of concurrent clients and aggregates the outcome.
func runLevel(client *http.Client, cfg config, target, opts string, concurrency int) levelResult {
	type outcome struct {
		latency  time.Duration
		rejected bool
		err      error
	}
	outcomes := make([]outcome, cfg.requests)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= cfg.requests {
					return
				}
				// Deterministic async/sync interleaving: request i is async
				// when its slot in a 100-wide cycle falls under the fraction.
				async := float64(i%100) < cfg.asyncFrac*100
				body := fmt.Sprintf(`{"generate":"dag:gates=%d,seed=%d","options":%s`,
					cfg.gates, i%cfg.seeds+1, opts)
				if async {
					body += `,"mode":"async"}`
				} else {
					body += "}"
				}
				t0 := time.Now()
				rejected, err := oneRequest(client, target, cfg.endpoint, body, async)
				outcomes[i] = outcome{latency: time.Since(t0), rejected: rejected, err: err}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	res := levelResult{Concurrency: concurrency, Requests: cfg.requests, WallMS: ms(wall)}
	var lat []time.Duration
	for _, o := range outcomes {
		switch {
		case o.err != nil:
			res.Errors++
		case o.rejected:
			res.Rejected++
		default:
			res.OK++
			lat = append(lat, o.latency)
		}
	}
	res.ReqPerSec = float64(cfg.requests) / wall.Seconds()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		res.P50MS = ms(percentile(lat, 50))
		res.P95MS = ms(percentile(lat, 95))
		res.P99MS = ms(percentile(lat, 99))
		res.MaxMS = ms(lat[len(lat)-1])
	}
	return res
}

// oneRequest executes a single sync request or a full async
// submit-and-follow cycle. It reports rejected=true for a 429 and an
// error for anything that is not a completed engine run.
func oneRequest(client *http.Client, target, endpoint, body string, async bool) (rejected bool, err error) {
	resp, err := client.Post(target+endpoint, "application/json", strings.NewReader(body))
	if err != nil {
		return false, err
	}
	if !async {
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return false, err
		}
		if resp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("status %d", resp.StatusCode)
		}
		return false, nil
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return true, nil
	}
	if resp.StatusCode != http.StatusAccepted {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return false, fmt.Errorf("async submit: status %d", resp.StatusCode)
	}
	var sub struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	_ = resp.Body.Close()
	if err != nil {
		return false, fmt.Errorf("async submit: %w", err)
	}
	return false, followJob(client, target, sub.Job.ID)
}

// followJob streams the job's events until its terminal snapshot and
// requires it to be done.
func followJob(client *http.Client, target, id string) error {
	resp, err := client.Get(target + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: status %d", resp.StatusCode)
	}
	var last struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			return fmt.Errorf("events: %w", err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if last.State != "done" {
		return fmt.Errorf("job %s ended %q (%s), want done", id, last.State, last.Error)
	}
	return nil
}

// percentile picks from sorted latencies with the nearest-rank method.
func percentile(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// ms renders a duration in milliseconds.
func ms(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// writeTable renders the sweep as the human-readable table.
func writeTable(w io.Writer, rep report) error {
	if _, err := fmt.Fprintf(w, "loadgen %s%s gates=%d seeds=%d async=%.2f\n",
		rep.Target, rep.Endpoint, rep.Gates, rep.Seeds, rep.Async); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-6s %-5s %-5s %-5s %-5s %9s %9s %9s %9s %9s\n",
		"conc", "n", "ok", "429", "err", "req/s", "p50ms", "p95ms", "p99ms", "maxms"); err != nil {
		return err
	}
	for _, l := range rep.Levels {
		if _, err := fmt.Fprintf(w, "%-6d %-5d %-5d %-5d %-5d %9.1f %9.2f %9.2f %9.2f %9.2f\n",
			l.Concurrency, l.Requests, l.OK, l.Rejected, l.Errors,
			l.ReqPerSec, l.P50MS, l.P95MS, l.P99MS, l.MaxMS); err != nil {
			return err
		}
	}
	return nil
}
