package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

// testServer spins an in-process serve instance for the sweep to hit.
func testServer(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// baseConfig returns a small, fast sweep against the given URL.
func baseConfig(url string) config {
	return config{
		url:         url,
		endpoint:    "/v1/plan",
		gates:       60,
		seeds:       4,
		requests:    12,
		concurrency: "2",
		timeout:     2 * time.Minute,
	}
}

func TestSweepSyncAndAsyncMix(t *testing.T) {
	ts := testServer(t, serve.Config{})
	cfg := baseConfig(ts.URL)
	cfg.concurrency = "1,3"
	cfg.asyncFrac = 0.5
	cfg.jsonOut = true

	var out bytes.Buffer
	failed, err := run(&out, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("sweep reported failures:\n%s", out.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not the JSON report: %v\n%s", err, out.String())
	}
	if rep.Schema != schemaName {
		t.Errorf("schema = %q, want %q", rep.Schema, schemaName)
	}
	if len(rep.Levels) != 2 {
		t.Fatalf("got %d levels, want 2", len(rep.Levels))
	}
	for _, l := range rep.Levels {
		if l.OK != cfg.requests || l.Errors != 0 || l.Rejected != 0 {
			t.Errorf("level %d: ok=%d rejected=%d errors=%d, want all %d ok",
				l.Concurrency, l.OK, l.Rejected, l.Errors, cfg.requests)
		}
		if l.ReqPerSec <= 0 || l.P50MS <= 0 || l.P99MS < l.P50MS || l.MaxMS < l.P99MS {
			t.Errorf("level %d: implausible stats %+v", l.Concurrency, l)
		}
	}
}

func TestSweepTextTable(t *testing.T) {
	ts := testServer(t, serve.Config{})
	cfg := baseConfig(ts.URL)
	cfg.requests = 4

	var out bytes.Buffer
	failed, err := run(&out, cfg)
	if err != nil || failed {
		t.Fatalf("run: failed=%v err=%v", failed, err)
	}
	text := out.String()
	for _, want := range []string{"conc", "req/s", "p99ms", "/v1/plan"} {
		if !strings.Contains(text, want) {
			t.Errorf("table output missing %q:\n%s", want, text)
		}
	}
}

// TestAsyncSaturationGets429 pins the acceptance story end to end: an
// all-async burst against one worker and a one-slot queue is partly
// refused with fast 429s — counted as back-pressure, not errors — while
// every accepted job still completes.
func TestAsyncSaturationGets429(t *testing.T) {
	ts := testServer(t, serve.Config{Workers: 1, JobQueue: 1})
	cfg := baseConfig(ts.URL)
	cfg.endpoint = "/v1/faultsim"
	// Heavy enough that the first job is still running when the rest of
	// the burst arrives, so the queue genuinely fills.
	cfg.options = `{"patterns":32768,"keep_faults":true,"full_universe":true}`
	cfg.gates = 300
	cfg.seeds = 6
	cfg.requests = 6
	cfg.concurrency = "6"
	cfg.asyncFrac = 1
	cfg.jsonOut = true

	var out bytes.Buffer
	failed, err := run(&out, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("saturation sweep reported hard failures:\n%s", out.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	l := rep.Levels[0]
	if l.Errors != 0 {
		t.Errorf("burst produced %d hard errors, want 0 (429s must not count as errors)", l.Errors)
	}
	if l.Rejected == 0 {
		t.Error("burst past saturation produced no 429s; the bounded queue did not push back")
	}
	if l.OK == 0 {
		t.Error("no accepted job completed")
	}
	if l.OK+l.Rejected != cfg.requests {
		t.Errorf("ok(%d)+rejected(%d) != %d requests", l.OK, l.Rejected, cfg.requests)
	}
}

func TestValidateRejectsBadFlags(t *testing.T) {
	for name, mutate := range map[string]func(*config){
		"missing url":       func(c *config) { c.url = "" },
		"bad endpoint":      func(c *config) { c.endpoint = "v1/plan" },
		"zero gates":        func(c *config) { c.gates = 0 },
		"zero seeds":        func(c *config) { c.seeds = 0 },
		"zero requests":     func(c *config) { c.requests = 0 },
		"async over 1":      func(c *config) { c.asyncFrac = 1.5 },
		"negative async":    func(c *config) { c.asyncFrac = -0.1 },
		"zero timeout":      func(c *config) { c.timeout = 0 },
		"bad options json":  func(c *config) { c.options = "{planner" },
		"bad concurrency":   func(c *config) { c.concurrency = "1,x" },
		"zero concurrency":  func(c *config) { c.concurrency = "0" },
		"empty concurrency": func(c *config) { c.concurrency = "" },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig("http://localhost:0")
			mutate(&cfg)
			var out bytes.Buffer
			_, err := run(&out, cfg)
			if err == nil {
				t.Fatal("bad config accepted")
			}
			if cli.ExitCode(err) != cli.ExitUsage {
				t.Errorf("exit code %d, want %d (usage): %v", cli.ExitCode(err), cli.ExitUsage, err)
			}
		})
	}
}

func TestPercentileNearestRank(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    int
		want time.Duration
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}} {
		if got := percentile(lat, tc.p); got != tc.want {
			t.Errorf("p%d = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentile([]time.Duration{42}, 99); got != 42 {
		t.Errorf("single-sample p99 = %d, want 42", got)
	}
}
