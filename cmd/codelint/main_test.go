package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cli"
)

func fixture(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "testdata", "codelint", name)
	if _, err := os.Stat(p); err != nil {
		t.Skipf("fixture missing: %v", err)
	}
	return p
}

// TestGoldenJSON pins the exact -json bytes per rule fixture: the
// output must be order-deterministic and byte-stable, the same
// contract the serve cache enforces on engine responses.
func TestGoldenJSON(t *testing.T) {
	for _, rule := range []string{"g001", "g002", "g003", "g004", "g005", "g006", "g007", "g008", "g009", "g010", "g011", "g012", "g013"} {
		t.Run(rule, func(t *testing.T) {
			want, err := os.ReadFile(fixture(t, rule+".golden.json"))
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			failed, err := run(&out, config{
				dir:      ".",
				patterns: []string{fixture(t, rule)},
				jsonOut:  true,
				sevName:  "info",
				failName: "warning",
			})
			if err != nil {
				t.Fatal(err)
			}
			if !failed {
				t.Errorf("%s fixture did not fail at warning severity", rule)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("JSON diverges from golden\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
			}
		})
	}
}

// TestGoldenSARIF pins the exact -sarif bytes for one fixture: the
// SARIF log carries the full rule table plus one result per finding,
// and must stay as byte-stable as the JSON mode.
func TestGoldenSARIF(t *testing.T) {
	want, err := os.ReadFile(fixture(t, "g011.golden.sarif"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	failed, err := run(&out, config{
		dir:      ".",
		patterns: []string{fixture(t, "g011")},
		sarifOut: true,
		sevName:  "info",
		failName: "warning",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("g011 fixture did not fail at warning severity")
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("SARIF diverges from golden\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
	}
}

// TestOutputDeterministic runs the same analysis twice through fresh
// loaders and byte-compares the output.
func TestOutputDeterministic(t *testing.T) {
	render := func() []byte {
		var out bytes.Buffer
		if _, err := run(&out, config{
			dir:      ".",
			patterns: []string{fixture(t, "g001"), fixture(t, "g003")},
			jsonOut:  true,
			sevName:  "info",
			failName: "error",
		}); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Errorf("output differs between runs\n%s\n%s", a, b)
	}
}

// TestFailSeverity checks the gate: g005 carries warning+info only, so
// it fails at -fail warning and passes at -fail error.
func TestFailSeverity(t *testing.T) {
	for _, tc := range []struct {
		fail string
		want bool
	}{
		{"warning", true},
		{"error", false},
	} {
		var out bytes.Buffer
		failed, err := run(&out, config{
			dir:      ".",
			patterns: []string{fixture(t, "g005")},
			sevName:  "info",
			failName: tc.fail,
		})
		if err != nil {
			t.Fatal(err)
		}
		if failed != tc.want {
			t.Errorf("-fail %s: failed = %v, want %v", tc.fail, failed, tc.want)
		}
	}
}

// TestOnlySelection covers the -only rule filter: selected rules fire,
// everything else stays quiet, and the selection composes with the
// severity gate.
func TestOnlySelection(t *testing.T) {
	var out bytes.Buffer
	failed, err := run(&out, config{
		dir:      ".",
		patterns: []string{fixture(t, "g007"), fixture(t, "g008")},
		sevName:  "info",
		failName: "warning",
		only:     "g007,g010",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("-only g007,g010 should still fail on the g007 fixture")
	}
	text := out.String()
	if !bytes.Contains([]byte(text), []byte("G007")) {
		t.Errorf("selected rule G007 missing from output:\n%s", text)
	}
	if bytes.Contains([]byte(text), []byte("G008")) {
		t.Errorf("unselected rule G008 leaked into output:\n%s", text)
	}

	// Deselecting the fixture's rule turns the run clean.
	out.Reset()
	failed, err = run(&out, config{
		dir:      ".",
		patterns: []string{fixture(t, "g008")},
		sevName:  "info",
		failName: "warning",
		only:     "g009",
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("-only g009 on the g008 fixture should be clean:\n%s", out.String())
	}
}

// TestUsageErrors pins the exit-code contract for bad invocations:
// every run error maps to ExitUsage through cli.Usage.
func TestUsageErrors(t *testing.T) {
	for _, cfg := range []config{
		{dir: ".", sevName: "loud", failName: "error"},
		{dir: ".", sevName: "info", failName: "silent"},
		{dir: ".", sevName: "info", failName: "error", patterns: []string{"/nonexistent/pkg"}},
		{dir: ".", sevName: "info", failName: "error", only: "g999"},                  // unknown rule
		{dir: "/", sevName: "info", failName: "error"},                                // no enclosing module
		{dir: ".", sevName: "info", failName: "error", jsonOut: true, sarifOut: true}, // exclusive output modes
	} {
		var out bytes.Buffer
		_, err := run(&out, cfg)
		if err == nil {
			t.Errorf("config %+v: expected error", cfg)
			continue
		}
		if code := cli.ExitCode(cli.Usage(err)); code != cli.ExitUsage {
			t.Errorf("config %+v: exit code %d, want %d", cfg, code, cli.ExitUsage)
		}
	}
}

// TestTextOutput sanity-checks the human renderer: summary line plus
// one indented line per finding.
func TestTextOutput(t *testing.T) {
	var out bytes.Buffer
	failed, err := run(&out, config{
		dir:      ".",
		patterns: []string{fixture(t, "g004")},
		sevName:  "info",
		failName: "warning",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("g004 fixture did not fail")
	}
	text := out.String()
	for _, want := range []string{"3 warning(s)", "G004", "time.Now", "dirty.go:14:9"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
}

// TestSelfLint runs the tool over its own module the way CI does and
// requires a clean tree — the acceptance gate for every future PR.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	var out bytes.Buffer
	failed, err := run(&out, config{
		dir:      ".",
		patterns: nil, // default ./... from the module root
		sevName:  "warning",
		failName: "warning",
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("repo is not codelint-clean:\n%s", out.String())
	}
}
