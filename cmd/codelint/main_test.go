package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/golint"
)

func fixture(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "testdata", "codelint", name)
	if _, err := os.Stat(p); err != nil {
		t.Skipf("fixture missing: %v", err)
	}
	return p
}

// TestGoldenJSON pins the exact -json bytes per rule fixture: the
// output must be order-deterministic and byte-stable, the same
// contract the serve cache enforces on engine responses.
func TestGoldenJSON(t *testing.T) {
	for _, rule := range []string{"g001", "g002", "g003", "g004", "g005", "g006", "g007", "g008",
		"g009", "g010", "g011", "g012", "g013", "g014", "g015", "g016"} {
		t.Run(rule, func(t *testing.T) {
			want, err := os.ReadFile(fixture(t, rule+".golden.json"))
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			failed, err := run(&out, config{
				dir:      ".",
				patterns: []string{fixture(t, rule)},
				jsonOut:  true,
				sevName:  "info",
				failName: "warning",
			})
			if err != nil {
				t.Fatal(err)
			}
			if !failed {
				t.Errorf("%s fixture did not fail at warning severity", rule)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("JSON diverges from golden\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
			}
		})
	}
}

// TestGoldenSARIF pins the exact -sarif bytes for one fixture: the
// SARIF log carries the full rule table plus one result per finding,
// and must stay as byte-stable as the JSON mode.
func TestGoldenSARIF(t *testing.T) {
	want, err := os.ReadFile(fixture(t, "g011.golden.sarif"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	failed, err := run(&out, config{
		dir:      ".",
		patterns: []string{fixture(t, "g011")},
		sarifOut: true,
		sevName:  "info",
		failName: "warning",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("g011 fixture did not fail at warning severity")
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("SARIF diverges from golden\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
	}
}

// TestOutputDeterministic runs the same analysis twice through fresh
// loaders and byte-compares the output.
func TestOutputDeterministic(t *testing.T) {
	render := func() []byte {
		var out bytes.Buffer
		if _, err := run(&out, config{
			dir:      ".",
			patterns: []string{fixture(t, "g001"), fixture(t, "g003")},
			jsonOut:  true,
			sevName:  "info",
			failName: "error",
		}); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Errorf("output differs between runs\n%s\n%s", a, b)
	}
}

// TestFailSeverity checks the gate: g005 carries warning+info only, so
// it fails at -fail warning and passes at -fail error.
func TestFailSeverity(t *testing.T) {
	for _, tc := range []struct {
		fail string
		want bool
	}{
		{"warning", true},
		{"error", false},
	} {
		var out bytes.Buffer
		failed, err := run(&out, config{
			dir:      ".",
			patterns: []string{fixture(t, "g005")},
			sevName:  "info",
			failName: tc.fail,
		})
		if err != nil {
			t.Fatal(err)
		}
		if failed != tc.want {
			t.Errorf("-fail %s: failed = %v, want %v", tc.fail, failed, tc.want)
		}
	}
}

// TestOnlySelection covers the -only rule filter: selected rules fire,
// everything else stays quiet, and the selection composes with the
// severity gate.
func TestOnlySelection(t *testing.T) {
	var out bytes.Buffer
	failed, err := run(&out, config{
		dir:      ".",
		patterns: []string{fixture(t, "g007"), fixture(t, "g008")},
		sevName:  "info",
		failName: "warning",
		only:     "g007,g010",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("-only g007,g010 should still fail on the g007 fixture")
	}
	text := out.String()
	if !bytes.Contains([]byte(text), []byte("G007")) {
		t.Errorf("selected rule G007 missing from output:\n%s", text)
	}
	if bytes.Contains([]byte(text), []byte("G008")) {
		t.Errorf("unselected rule G008 leaked into output:\n%s", text)
	}

	// Deselecting the fixture's rule turns the run clean.
	out.Reset()
	failed, err = run(&out, config{
		dir:      ".",
		patterns: []string{fixture(t, "g008")},
		sevName:  "info",
		failName: "warning",
		only:     "g009",
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("-only g009 on the g008 fixture should be clean:\n%s", out.String())
	}
}

// TestUsageErrors pins the exit-code contract for bad invocations:
// every run error maps to ExitUsage through cli.Usage.
func TestUsageErrors(t *testing.T) {
	for _, cfg := range []config{
		{dir: ".", sevName: "loud", failName: "error"},
		{dir: ".", sevName: "info", failName: "silent"},
		{dir: ".", sevName: "info", failName: "error", patterns: []string{"/nonexistent/pkg"}},
		{dir: ".", sevName: "info", failName: "error", only: "g999"},                  // unknown rule
		{dir: "/", sevName: "info", failName: "error"},                                // no enclosing module
		{dir: ".", sevName: "info", failName: "error", jsonOut: true, sarifOut: true}, // exclusive output modes
	} {
		var out bytes.Buffer
		_, err := run(&out, cfg)
		if err == nil {
			t.Errorf("config %+v: expected error", cfg)
			continue
		}
		if code := cli.ExitCode(cli.Usage(err)); code != cli.ExitUsage {
			t.Errorf("config %+v: exit code %d, want %d", cfg, code, cli.ExitUsage)
		}
	}
}

// TestTextOutput sanity-checks the human renderer: summary line plus
// one indented line per finding.
func TestTextOutput(t *testing.T) {
	var out bytes.Buffer
	failed, err := run(&out, config{
		dir:      ".",
		patterns: []string{fixture(t, "g004")},
		sevName:  "info",
		failName: "warning",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("g004 fixture did not fail")
	}
	text := out.String()
	for _, want := range []string{"3 warning(s)", "G004", "time.Now", "dirty.go:14:9"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
}

// TestSelfLint runs the tool over its own module the way CI does and
// requires a clean tree — the acceptance gate for every future PR.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	var out bytes.Buffer
	failed, err := run(&out, config{
		dir:      ".",
		patterns: nil, // default ./... from the module root
		sevName:  "warning",
		failName: "warning",
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("repo is not codelint-clean:\n%s", out.String())
	}
}

// fixModule copies the g014 fixture into a fresh throwaway module that
// preserves the testdata/codelint/g014 path suffix (the allowlists
// match by suffix), so -fix tests never touch the real tree.
func fixModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "testdata", "codelint", "g014")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(fixture(t, "g014"), "dirty.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dirty.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module repro\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

// fixCfg is the shared invocation shape for the -fix tests.
func fixCfg(root string) config {
	return config{
		dir:      root,
		patterns: []string{"repro/testdata/codelint/g014"},
		sevName:  "info",
		failName: "warning",
	}
}

// TestListRules pins the -list surface: every registered rule, in
// registry order, in both text and JSON, composing with -only.
func TestListRules(t *testing.T) {
	var out bytes.Buffer
	failed, err := run(&out, config{dir: ".", sevName: "info", failName: "warning", list: true})
	if err != nil || failed {
		t.Fatalf("list: failed=%v err=%v", failed, err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("-list printed %d rows, want 16:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "G001  ") || !strings.HasPrefix(lines[15], "G016  ") {
		t.Errorf("-list rows out of registry order:\n%s", out.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "error") && !strings.Contains(line, "warning") {
			t.Errorf("-list row missing a severity: %q", line)
		}
	}

	out.Reset()
	if _, err := run(&out, config{dir: ".", sevName: "info", failName: "warning", list: true, jsonOut: true}); err != nil {
		t.Fatal(err)
	}
	var rows []ruleInfo
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("-list -json did not decode: %v\n%s", err, out.String())
	}
	if len(rows) != 16 || rows[0].ID != "G001" || rows[15].ID != "G016" {
		t.Errorf("-list -json rows = %d (%s..%s), want 16 G001..G016", len(rows), rows[0].ID, rows[len(rows)-1].ID)
	}
	for _, r := range rows {
		if r.Name == "" || r.Doc == "" || (r.Severity != golint.Error && r.Severity != golint.Warning) {
			t.Errorf("-list -json row incomplete: %+v", r)
		}
	}

	out.Reset()
	if _, err := run(&out, config{dir: ".", sevName: "info", failName: "warning", list: true, only: "g014"}); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimRight(out.String(), "\n"); strings.Count(got, "\n") != 0 || !strings.HasPrefix(got, "G014") {
		t.Errorf("-list -only g014 = %q, want the single G014 row", got)
	}
}

// TestFixDryRunGolden pins the -fix -dry-run diff byte-exactly: the
// two insertable releases in the g014 fixture render as one unified
// diff, and the source tree stays untouched.
func TestFixDryRunGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join(fixture(t, ""), "g014.fix.diff"))
	if err != nil {
		t.Fatal(err)
	}
	root := fixModule(t)
	before, err := os.ReadFile(filepath.Join(root, "testdata", "codelint", "g014", "dirty.go"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fixCfg(root)
	cfg.fix, cfg.dryRun = true, true
	var out bytes.Buffer
	failed, err := run(&out, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Error("-fix -dry-run must exit 0; it is a preview, not a gate")
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("dry-run diff diverges from golden\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
	}
	after, err := os.ReadFile(filepath.Join(root, "testdata", "codelint", "g014", "dirty.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("-dry-run modified the source tree")
	}
}

// TestFixApplyIdempotent drives the full CLI loop: fix writes once,
// the fixed findings are gone, and a second fix has nothing to do.
func TestFixApplyIdempotent(t *testing.T) {
	root := fixModule(t)
	cfg := fixCfg(root)
	cfg.fix = true
	var out bytes.Buffer
	failed, err := run(&out, cfg)
	if err != nil || failed {
		t.Fatalf("fix: failed=%v err=%v\n%s", failed, err, out.String())
	}
	if !strings.Contains(out.String(), "codelint: fixed 1 file(s)") {
		t.Errorf("first -fix output = %q", out.String())
	}

	out.Reset()
	if _, err := run(&out, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "codelint: fixed 0 file(s)") {
		t.Errorf("second -fix output = %q, want a no-op", out.String())
	}

	// The surviving findings are the finding-only shapes.
	out.Reset()
	failed, err = run(&out, fixCfg(root))
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("finding-only defects vanished with the fix run")
	}
	if !strings.Contains(out.String(), "3 finding(s)") {
		t.Errorf("post-fix report = %q, want 3 surviving findings", out.String())
	}
	if strings.Contains(out.String(), "is never released") {
		t.Errorf("a fixed never-released finding survived:\n%s", out.String())
	}
}

// TestBaselineRatchet drives the CLI ratchet loop: record the debt,
// gate at error with the baseline (clean), fix some of it, and watch
// the fixed entries go stale while the rest stay suppressed.
func TestBaselineRatchet(t *testing.T) {
	root := fixModule(t)
	blFile := filepath.Join(root, ".codelint-baseline")

	cfg := fixCfg(root)
	cfg.writeBase = blFile
	var out bytes.Buffer
	failed, err := run(&out, cfg)
	if err != nil || failed {
		t.Fatalf("write-baseline: failed=%v err=%v", failed, err)
	}
	if !strings.Contains(out.String(), "wrote 5 baseline entries") {
		t.Errorf("write-baseline output = %q", out.String())
	}

	// With the baseline, the module gates clean even at -fail error.
	gated := fixCfg(root)
	gated.failName = "error"
	gated.baseline = blFile
	out.Reset()
	failed, err = run(&out, gated)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("baselined run failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "baseline: 5 suppressed, 0 stale entries") {
		t.Errorf("baselined output = %q", out.String())
	}

	// Fix the fixable pair; their entries go stale, the rest hold
	// (fingerprints hash line text, so the inserted lines shift nothing).
	fix := fixCfg(root)
	fix.fix = true
	if _, err := run(io.Discard, fix); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	failed, err = run(&out, gated)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("post-fix baselined run failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "baseline: 3 suppressed, 2 stale entries") {
		t.Errorf("post-fix baselined output = %q", out.String())
	}

	// A brand-new finding is NOT suppressed: gate fails.
	dirty := filepath.Join(root, "testdata", "codelint", "g014", "extra.go")
	extra := "package g014\n\nimport \"os\"\n\n// Fresh leaks a new file handle the baseline has never seen.\nfunc Fresh() {\n\tf, err := os.Open(\"x\")\n\tif err != nil {\n\t\treturn\n\t}\n\t_ = f.Name()\n}\n"
	if err := os.WriteFile(dirty, []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	failed, err = run(&out, gated)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Errorf("new finding slipped through the baseline:\n%s", out.String())
	}
}

// TestBaselineUsageErrors pins the flag-combination contract around
// the new modes.
func TestBaselineUsageErrors(t *testing.T) {
	if _, err := run(io.Discard, config{dir: ".", sevName: "info", failName: "warning", dryRun: true}); err == nil {
		t.Error("-dry-run without -fix must be a usage error")
	}
	if _, err := run(io.Discard, config{
		dir: ".", sevName: "info", failName: "warning",
		patterns: []string{fixture(t, "g014")}, baseline: "/nonexistent/baseline",
	}); err == nil {
		t.Error("a missing -baseline file must be an error, not an empty suppression set")
	}
}
