// Command codelint runs the self-hosted Go analyzer (internal/golint)
// over packages of this module and reports contract violations:
// map-iteration order leaking into output (G001), process exits that
// bypass the internal/cli exit-code contract (G002), dropped or
// shadowed context.Context arguments (G003), impure calls inside
// deterministic engine packages (G004), error-hygiene defects (G005),
// exported symbols in API-bearing packages missing leading-name godoc
// comments (G006), allocations reachable from the measured engine
// loops (G007), goroutine discipline (G008), lock discipline (G009),
// unsynchronized worker-state sharing (G010), engine option fields
// missing from the serve cache key (G011), unbounded handler-reachable
// loops that never poll their context (G012), and engine reads of
// mutable state outside the cache key (G013).
//
// Inputs are positional package patterns — directory paths, module
// import paths, or "/..." wildcards — defaulting to ./... from the
// enclosing module root. The exit code is 0 when the tree is clean at
// the -fail severity, 1 when any finding reaches it (default: warning,
// stricter than cmd/lint because this gate runs in CI), and 2 on bad
// usage or packages that fail to load or type-check.
//
// Examples:
//
//	codelint ./...
//	codelint -json ./internal/serve
//	codelint -sarif ./... > codelint.sarif
//	codelint -severity info -fail error ./cmd/...
//	codelint -only g007,g010 ./internal/fsim
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/golint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		sarifOut = flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (mutually exclusive with -json)")
		sevName  = flag.String("severity", "info", "minimum severity to report: info | warning | error")
		failName = flag.String("fail", "warning", "minimum severity that fails the run: info | warning | error")
		only     = flag.String("only", "", "comma-separated rule IDs to run (e.g. g007,g010); default all")
		dir      = flag.String("C", ".", "directory whose enclosing module is analyzed")
	)
	flag.Parse()
	failed, err := run(os.Stdout, config{
		dir:      *dir,
		patterns: flag.Args(),
		jsonOut:  *jsonOut,
		sarifOut: *sarifOut,
		sevName:  *sevName,
		failName: *failName,
		only:     *only,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "codelint:", err)
		os.Exit(cli.ExitCode(cli.Usage(err)))
	}
	if failed {
		os.Exit(cli.ExitFailure)
	}
}

// config gathers one invocation's settings.
type config struct {
	dir      string
	patterns []string
	jsonOut  bool
	sarifOut bool
	sevName  string
	failName string
	only     string
}

// jsonReport is the stable JSON shape: module, severity counts, and
// the position-ordered findings.
type jsonReport struct {
	Module   string           `json:"module"`
	Errors   int              `json:"errors"`
	Warnings int              `json:"warnings"`
	Infos    int              `json:"infos"`
	Findings []golint.Finding `json:"findings"`
}

// run analyzes the requested packages and reports whether any finding
// reached the failure severity.
func run(w io.Writer, cfg config) (bool, error) {
	if cfg.jsonOut && cfg.sarifOut {
		return false, fmt.Errorf("-json and -sarif are mutually exclusive")
	}
	minSev, err := golint.ParseSeverity(cfg.sevName)
	if err != nil {
		return false, err
	}
	failSev, err := golint.ParseSeverity(cfg.failName)
	if err != nil {
		return false, err
	}
	analyzers := golint.Analyzers()
	if cfg.only != "" {
		analyzers, err = golint.Select(analyzers, strings.Split(cfg.only, ","))
		if err != nil {
			return false, err
		}
	}
	loader, err := golint.NewLoader(cfg.dir)
	if err != nil {
		return false, err
	}
	pkgs, err := loader.Load(cfg.patterns...)
	if err != nil {
		return false, err
	}
	rep := golint.Run(loader, pkgs, analyzers)

	failed := false
	if s, ok := rep.MaxSeverity(); ok && s >= failSev {
		failed = true
	}
	counts := rep.CountBySeverity()
	if cfg.sarifOut {
		if err := golint.WriteSARIF(w, rep, analyzers, minSev); err != nil {
			return false, err
		}
		return failed, nil
	}
	if cfg.jsonOut {
		findings := rep.Filter(minSev)
		if findings == nil {
			findings = []golint.Finding{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{
			Module:   rep.Module,
			Errors:   counts[golint.Error],
			Warnings: counts[golint.Warning],
			Infos:    counts[golint.Info],
			Findings: findings,
		}); err != nil {
			return false, err
		}
		return failed, nil
	}
	fmt.Fprintf(w, "%s: %d package(s), %d finding(s): %d error(s), %d warning(s), %d info\n",
		rep.Module, len(pkgs), len(rep.Findings), counts[golint.Error], counts[golint.Warning], counts[golint.Info])
	for _, f := range rep.Filter(minSev) {
		fmt.Fprintf(w, "  %s\n", f)
	}
	return failed, nil
}
