// Command codelint runs the self-hosted Go analyzer (internal/golint)
// over packages of this module and reports contract violations:
// map-iteration order leaking into output (G001), process exits that
// bypass the internal/cli exit-code contract (G002), dropped or
// shadowed context.Context arguments (G003), impure calls inside
// deterministic engine packages (G004), error-hygiene defects (G005),
// exported symbols in API-bearing packages missing leading-name godoc
// comments (G006), allocations reachable from the measured engine
// loops (G007), goroutine discipline (G008), lock discipline (G009),
// unsynchronized worker-state sharing (G010), engine option fields
// missing from the serve cache key (G011), unbounded handler-reachable
// loops that never poll their context (G012), engine reads of mutable
// state outside the cache key (G013), resources not released on every
// path (G014), durability discipline in the journal-owning packages
// (G015), and streaming-handler discipline (G016).
//
// Inputs are positional package patterns — directory paths, module
// import paths, or "/..." wildcards — defaulting to ./... from the
// enclosing module root. The exit code is 0 when the tree is clean at
// the -fail severity, 1 when any finding reaches it (default: warning,
// stricter than cmd/lint because this gate runs in CI), and 2 on bad
// usage or packages that fail to load or type-check.
//
// -baseline FILE suppresses findings whose fingerprints the file lists
// (see internal/golint/baseline.go), so CI can gate new findings at
// -fail error while existing debt is paid down; -write-baseline FILE
// records the current findings as that file. -fix applies the
// suggested fixes that some findings carry and exits 0; with -dry-run
// it prints the unified diffs instead of writing. -list prints the
// rule registry and exits.
//
// Examples:
//
//	codelint ./...
//	codelint -json ./internal/serve
//	codelint -sarif ./... > codelint.sarif
//	codelint -severity info -fail error ./cmd/...
//	codelint -only g007,g010 ./internal/fsim
//	codelint -fail error -baseline .codelint-baseline ./...
//	codelint -fix -dry-run ./...
//	codelint -list -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cli"
	"repro/internal/golint"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as JSON")
		sarifOut  = flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (mutually exclusive with -json)")
		sevName   = flag.String("severity", "info", "minimum severity to report: info | warning | error")
		failName  = flag.String("fail", "warning", "minimum severity that fails the run: info | warning | error")
		only      = flag.String("only", "", "comma-separated rule IDs to run (e.g. g007,g010); default all")
		dir       = flag.String("C", ".", "directory whose enclosing module is analyzed")
		fix       = flag.Bool("fix", false, "apply suggested fixes to the source tree and exit 0")
		dryRun    = flag.Bool("dry-run", false, "with -fix, print unified diffs instead of writing files")
		baseline  = flag.String("baseline", "", "suppress findings whose fingerprints this baseline file lists")
		writeBase = flag.String("write-baseline", "", "write the current findings as a baseline file and exit 0")
		list      = flag.Bool("list", false, "print the rule registry (id, severity, summary) and exit")
	)
	flag.Parse()
	failed, err := run(os.Stdout, config{
		dir:       *dir,
		patterns:  flag.Args(),
		jsonOut:   *jsonOut,
		sarifOut:  *sarifOut,
		sevName:   *sevName,
		failName:  *failName,
		only:      *only,
		fix:       *fix,
		dryRun:    *dryRun,
		baseline:  *baseline,
		writeBase: *writeBase,
		list:      *list,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "codelint:", err)
		os.Exit(cli.ExitCode(cli.Usage(err)))
	}
	if failed {
		os.Exit(cli.ExitFailure)
	}
}

// config gathers one invocation's settings.
type config struct {
	dir       string
	patterns  []string
	jsonOut   bool
	sarifOut  bool
	sevName   string
	failName  string
	only      string
	fix       bool
	dryRun    bool
	baseline  string
	writeBase string
	list      bool
}

// jsonReport is the stable JSON shape: module, severity counts, and
// the position-ordered findings.
type jsonReport struct {
	Module   string           `json:"module"`
	Errors   int              `json:"errors"`
	Warnings int              `json:"warnings"`
	Infos    int              `json:"infos"`
	Findings []golint.Finding `json:"findings"`
}

// ruleInfo is one -list -json row.
type ruleInfo struct {
	ID       string          `json:"id"`
	Name     string          `json:"name"`
	Severity golint.Severity `json:"severity"`
	Doc      string          `json:"doc"`
}

// run analyzes the requested packages and reports whether any finding
// reached the failure severity.
func run(w io.Writer, cfg config) (bool, error) {
	if cfg.jsonOut && cfg.sarifOut {
		return false, fmt.Errorf("-json and -sarif are mutually exclusive")
	}
	if cfg.dryRun && !cfg.fix {
		return false, fmt.Errorf("-dry-run requires -fix")
	}
	minSev, err := golint.ParseSeverity(cfg.sevName)
	if err != nil {
		return false, err
	}
	failSev, err := golint.ParseSeverity(cfg.failName)
	if err != nil {
		return false, err
	}
	analyzers := golint.Analyzers()
	if cfg.only != "" {
		analyzers, err = golint.Select(analyzers, strings.Split(cfg.only, ","))
		if err != nil {
			return false, err
		}
	}
	if cfg.list {
		return false, listRules(w, analyzers, cfg.jsonOut)
	}
	loader, err := golint.NewLoader(cfg.dir)
	if err != nil {
		return false, err
	}
	pkgs, err := loader.Load(cfg.patterns...)
	if err != nil {
		return false, err
	}
	rep := golint.Run(loader, pkgs, analyzers)

	fps := golint.Fingerprints(loader.ModRoot, rep.Findings)
	suppressed, stale := 0, []string(nil)
	if cfg.baseline != "" {
		bl, err := readBaseline(cfg.baseline)
		if err != nil {
			return false, err
		}
		rep.Findings, fps, suppressed, stale = bl.Apply(rep.Findings, fps)
	}
	if cfg.writeBase != "" {
		if err := writeBaselineFile(cfg.writeBase, rep.Findings, fps); err != nil {
			return false, err
		}
		fmt.Fprintf(w, "codelint: wrote %d baseline entr%s to %s\n",
			len(rep.Findings), plural(len(rep.Findings), "y", "ies"), cfg.writeBase)
		return false, nil
	}
	if cfg.fix {
		return false, applyFixes(w, loader.ModRoot, rep.Findings, cfg.dryRun)
	}

	failed := false
	if s, ok := rep.MaxSeverity(); ok && s >= failSev {
		failed = true
	}
	counts := rep.CountBySeverity()
	if cfg.sarifOut {
		if err := golint.WriteSARIF(w, rep, analyzers, minSev, fps); err != nil {
			return false, err
		}
		return failed, nil
	}
	if cfg.jsonOut {
		findings := rep.Filter(minSev)
		if findings == nil {
			findings = []golint.Finding{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{
			Module:   rep.Module,
			Errors:   counts[golint.Error],
			Warnings: counts[golint.Warning],
			Infos:    counts[golint.Info],
			Findings: findings,
		}); err != nil {
			return false, err
		}
		return failed, nil
	}
	fmt.Fprintf(w, "%s: %d package(s), %d finding(s): %d error(s), %d warning(s), %d info\n",
		rep.Module, len(pkgs), len(rep.Findings), counts[golint.Error], counts[golint.Warning], counts[golint.Info])
	for _, f := range rep.Filter(minSev) {
		fmt.Fprintf(w, "  %s\n", f)
	}
	if cfg.baseline != "" {
		fmt.Fprintf(w, "baseline: %d suppressed, %d stale entr%s\n",
			suppressed, len(stale), plural(len(stale), "y", "ies"))
	}
	return failed, nil
}

// listRules prints the rule registry in registry order: one row per
// analyzer with its id, gravest emitted severity, and one-line doc.
func listRules(w io.Writer, analyzers []*golint.Analyzer, jsonOut bool) error {
	if jsonOut {
		rows := make([]ruleInfo, 0, len(analyzers))
		for _, a := range analyzers {
			rows = append(rows, ruleInfo{ID: a.ID, Name: a.Name, Severity: a.Severity, Doc: a.Doc})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	for _, a := range analyzers {
		if _, err := fmt.Fprintf(w, "%s  %-7s  %s: %s\n", a.ID, a.Severity, a.Name, a.Doc); err != nil {
			return err
		}
	}
	return nil
}

// applyFixes applies (or, in dry-run mode, prints as unified diffs)
// the suggested fixes the findings carry. Fixing is not a gate: the
// run exits 0 so CI can fix-then-verify without masking exit codes.
func applyFixes(w io.Writer, modRoot string, findings []golint.Finding, dryRun bool) error {
	fixed, err := golint.ApplyFixes(modRoot, findings)
	if err != nil {
		return err
	}
	paths := make([]string, 0, len(fixed))
	for p := range fixed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	if dryRun {
		for _, p := range paths {
			old, err := os.ReadFile(filepath.Join(modRoot, filepath.FromSlash(p)))
			if err != nil {
				return err
			}
			fmt.Fprint(w, golint.UnifiedDiff(p, old, fixed[p]))
		}
		return nil
	}
	if err := golint.WriteFixes(modRoot, fixed); err != nil {
		return err
	}
	fmt.Fprintf(w, "codelint: fixed %d file(s)\n", len(fixed))
	return nil
}

// readBaseline opens and parses a baseline file.
func readBaseline(path string) (*golint.Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return golint.ParseBaseline(f)
}

// writeBaselineFile records the findings (post-suppression, so
// combining -baseline and -write-baseline compacts stale entries) as
// a baseline file.
func writeBaselineFile(path string, findings []golint.Finding, fps []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := golint.WriteBaseline(f, findings, fps); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// plural picks the singular or plural suffix for n.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
