package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cli"
)

// goodConfig returns a config that passes validation.
func goodConfig() config {
	return config{
		addr:           ":0",
		workers:        0,
		cacheBytes:     1 << 20,
		requestTimeout: time.Second,
		maxBody:        1 << 20,
		drainTimeout:   time.Second,
		jobQueue:       64,
		maxJobs:        1024,
		jobRetention:   time.Hour,
		jobTimeout:     10 * time.Minute,
	}
}

// TestValidateRejectsBadConfig pins the usage contract: every invalid
// flag combination maps to exit code 2 through cli.ExitCode, and the
// message names the offending flag.
func TestValidateRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*config)
		flag   string
	}{
		{"empty addr", func(c *config) { c.addr = "" }, "-addr"},
		{"negative workers", func(c *config) { c.workers = -1 }, "-workers"},
		{"negative cache", func(c *config) { c.cacheBytes = -1 }, "-cache-bytes"},
		{"zero request timeout", func(c *config) { c.requestTimeout = 0 }, "-request-timeout"},
		{"zero max body", func(c *config) { c.maxBody = 0 }, "-max-body"},
		{"negative drain", func(c *config) { c.drainTimeout = -time.Second }, "-drain-timeout"},
		{"debug addr shadows public addr", func(c *config) { c.addr = ":8080"; c.debugAddr = ":8080" }, "-debug-addr"},
		{"zero job queue", func(c *config) { c.jobQueue = 0 }, "-job-queue"},
		{"zero max jobs", func(c *config) { c.maxJobs = 0 }, "-max-jobs"},
		{"negative retention", func(c *config) { c.jobRetention = -time.Hour }, "-job-retention"},
		{"zero job timeout", func(c *config) { c.jobTimeout = 0 }, "-job-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if err == nil {
				t.Fatal("validate accepted an invalid config")
			}
			if code := cli.ExitCode(err); code != cli.ExitUsage {
				t.Errorf("exit code = %d, want %d", code, cli.ExitUsage)
			}
			if !strings.Contains(err.Error(), tc.flag) {
				t.Errorf("error %q does not name %s", err, tc.flag)
			}
		})
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := goodConfig().validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

// TestRunListenFailure exercises the runtime-failure path: a listen
// error is a runtime fault (exit 1), not a usage error.
func TestRunListenFailure(t *testing.T) {
	cfg := goodConfig()
	cfg.addr = "256.256.256.256:99999" // unresolvable
	err := run(cfg)
	if err == nil {
		t.Fatal("run succeeded on an unresolvable address")
	}
	if code := cli.ExitCode(err); code != cli.ExitFailure {
		t.Errorf("exit code = %d, want %d", code, cli.ExitFailure)
	}
}

// TestRunRejectsBeforeListening asserts validation happens before any
// socket is opened, so a bad config never binds a port.
func TestRunRejectsBeforeListening(t *testing.T) {
	cfg := goodConfig()
	cfg.maxBody = -1
	err := run(cfg)
	if code := cli.ExitCode(err); code != cli.ExitUsage {
		t.Errorf("exit code = %d, want %d (err %v)", code, cli.ExitUsage, err)
	}
}

// TestDebugHandlerServesPprofAndExpvar probes the debug mux directly:
// the pprof index and the expvar counters must answer, and nothing is
// mounted at the root — the debug listener carries only /debug paths.
func TestDebugHandlerServesPprofAndExpvar(t *testing.T) {
	ts := httptest.NewServer(debugHandler())
	defer ts.Close()
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode
	}
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/vars"} {
		if code := get(path); code != http.StatusOK {
			t.Errorf("GET %s = %d, want %d", path, code, http.StatusOK)
		}
	}
	if code := get("/"); code == http.StatusOK {
		t.Error("debug listener serves the root path; it must only expose /debug")
	}
}

// TestRunDebugListenFailure pins that a broken -debug-addr surfaces as
// a runtime failure naming the debug listener, not a silent drop.
func TestRunDebugListenFailure(t *testing.T) {
	cfg := goodConfig()
	cfg.debugAddr = "256.256.256.256:99999" // unresolvable
	err := run(cfg)
	if err == nil {
		t.Fatal("run succeeded with an unresolvable debug address")
	}
	if !strings.Contains(err.Error(), "debug listener") {
		t.Errorf("error %q does not name the debug listener", err)
	}
	if code := cli.ExitCode(err); code != cli.ExitFailure {
		t.Errorf("exit code = %d, want %d", code, cli.ExitFailure)
	}
}

// freeAddr reserves a localhost port and returns it as host:port. The
// listener is closed before returning, so the address is free for the
// server under test to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// TestShutdownOrderingDrainsBlockedSubscriber is the end-to-end
// shutdown pin: with the single worker occupied and a second job
// queued, a subscriber blocked on the queued job's event stream must
// not hold SIGTERM shutdown open. The drain ends the stream, the
// public and debug listeners close, and run returns nil well inside
// the (deliberately generous) drain window.
func TestShutdownOrderingDrainsBlockedSubscriber(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a real server and sends SIGTERM")
	}
	cfg := goodConfig()
	cfg.addr = freeAddr(t)
	cfg.debugAddr = freeAddr(t)
	cfg.workers = 1
	cfg.drainTimeout = 30 * time.Second
	cfg.jobTimeout = 10 * time.Minute

	// Absorb SIGTERM in the test too: delivery must never depend on
	// whether run has reached its NotifyContext yet.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM)
	defer signal.Stop(sigs)

	runErr := make(chan error, 1)
	go func() { runErr <- run(cfg) }()
	base := "http://" + cfg.addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Occupy the worker with a heavy job, then queue a second one and
	// subscribe to its events: the subscriber parks on a state change
	// that will not arrive before the drain.
	submit := func(body string) string {
		t.Helper()
		resp, err := http.Post(base+"/v1/faultsim", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d body %s", resp.StatusCode, b)
		}
		var sub struct {
			Job struct {
				ID string `json:"id"`
			} `json:"job"`
		}
		if err := json.Unmarshal(b, &sub); err != nil || sub.Job.ID == "" {
			t.Fatalf("bad 202 body %s: %v", b, err)
		}
		return sub.Job.ID
	}
	submit(`{"generate":"dag:gates=1500,seed=1","options":{"patterns":1048576},"mode":"async"}`)
	queued := submit(`{"generate":"dag:gates=1500,seed=2","options":{"patterns":1048576},"mode":"async"}`)

	stream, err := http.Get(base + "/v1/jobs/" + queued + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	if !sc.Scan() {
		t.Fatalf("event stream ended before its first line: %v", sc.Err())
	}
	streamDone := make(chan error, 1)
	go func() {
		for sc.Scan() {
		}
		streamDone <- sc.Err()
	}()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-streamDone:
		if err != nil {
			t.Errorf("drained stream ended with %v, want clean EOF", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("SIGTERM left the blocked event subscriber hanging")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Errorf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return within the drain window after SIGTERM")
	}

	// Both listeners are down after the drain.
	for _, addr := range []string{cfg.addr, cfg.debugAddr} {
		if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
			conn.Close()
			t.Errorf("listener %s still accepts connections after shutdown", addr)
		}
	}
}
