package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
)

// goodConfig returns a config that passes validation.
func goodConfig() config {
	return config{
		addr:           ":0",
		workers:        0,
		cacheBytes:     1 << 20,
		requestTimeout: time.Second,
		maxBody:        1 << 20,
		drainTimeout:   time.Second,
	}
}

// TestValidateRejectsBadConfig pins the usage contract: every invalid
// flag combination maps to exit code 2 through cli.ExitCode, and the
// message names the offending flag.
func TestValidateRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*config)
		flag   string
	}{
		{"empty addr", func(c *config) { c.addr = "" }, "-addr"},
		{"negative workers", func(c *config) { c.workers = -1 }, "-workers"},
		{"negative cache", func(c *config) { c.cacheBytes = -1 }, "-cache-bytes"},
		{"zero request timeout", func(c *config) { c.requestTimeout = 0 }, "-request-timeout"},
		{"zero max body", func(c *config) { c.maxBody = 0 }, "-max-body"},
		{"negative drain", func(c *config) { c.drainTimeout = -time.Second }, "-drain-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if err == nil {
				t.Fatal("validate accepted an invalid config")
			}
			if code := cli.ExitCode(err); code != cli.ExitUsage {
				t.Errorf("exit code = %d, want %d", code, cli.ExitUsage)
			}
			if !strings.Contains(err.Error(), tc.flag) {
				t.Errorf("error %q does not name %s", err, tc.flag)
			}
		})
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := goodConfig().validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

// TestRunListenFailure exercises the runtime-failure path: a listen
// error is a runtime fault (exit 1), not a usage error.
func TestRunListenFailure(t *testing.T) {
	cfg := goodConfig()
	cfg.addr = "256.256.256.256:99999" // unresolvable
	err := run(cfg)
	if err == nil {
		t.Fatal("run succeeded on an unresolvable address")
	}
	if code := cli.ExitCode(err); code != cli.ExitFailure {
		t.Errorf("exit code = %d, want %d", code, cli.ExitFailure)
	}
}

// TestRunRejectsBeforeListening asserts validation happens before any
// socket is opened, so a bad config never binds a port.
func TestRunRejectsBeforeListening(t *testing.T) {
	cfg := goodConfig()
	cfg.maxBody = -1
	err := run(cfg)
	if code := cli.ExitCode(err); code != cli.ExitUsage {
		t.Errorf("exit code = %d, want %d (err %v)", code, cli.ExitUsage, err)
	}
}
