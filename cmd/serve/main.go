// Command serve exposes the repro engines — test point planning, fault
// simulation, ATPG, and netlist lint — as an HTTP/JSON service.
//
// Endpoints (all engine endpoints are POST with a JSON body carrying
// either inline "bench" text or a "generate" spec, plus "options"):
//
//	POST /v1/plan      test point planning (cuts | observe | control | hybrid)
//	POST /v1/faultsim  bit-parallel fault simulation
//	POST /v1/atpg      PODEM deterministic test generation
//	POST /v1/lint      netlist static analysis
//	GET  /healthz      liveness probe
//	GET  /v1/stats     request, cache, and pool counters
//	GET  /debug/vars   the same counters via expvar
//
// Results are cached content-addressed (SHA-256 of the canonicalized
// netlist and options), so repeated identical requests are served
// byte-identically without re-running the engines. On SIGINT/SIGTERM
// the listener closes, in-flight requests drain, and the process exits
// zero.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent engine executions (0 = GOMAXPROCS)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache budget in bytes")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 8<<20, "max request body bytes")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests on shutdown")
	flag.Parse()

	if err := run(*addr, *workers, *cacheBytes, *requestTimeout, *maxBody, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(addr string, workers int, cacheBytes int64, requestTimeout time.Duration, maxBody int64, drainTimeout time.Duration) error {
	s := serve.New(serve.Config{
		Workers:        workers,
		CacheBytes:     cacheBytes,
		RequestTimeout: requestTimeout,
		MaxBody:        maxBody,
	})
	s.PublishExpvar()

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("/debug/vars", expvar.Handler())

	srv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting connections, let in-flight requests finish.
	fmt.Fprintln(os.Stderr, "serve: shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
