// Command serve exposes the repro engines — test point planning, fault
// simulation, ATPG, and netlist lint — as an HTTP/JSON service.
//
// Endpoints (all engine endpoints are POST with a JSON body carrying
// either inline "bench" text or a "generate" spec, plus "options"):
//
//	POST   /v1/plan             test point planning (cuts | observe | control | hybrid)
//	POST   /v1/faultsim         bit-parallel fault simulation
//	POST   /v1/atpg             PODEM deterministic test generation
//	POST   /v1/lint             netlist static analysis
//	GET    /v1/jobs             list async jobs
//	GET    /v1/jobs/{id}        job status, progress, and result when done
//	GET    /v1/jobs/{id}/events stream job snapshots as JSON lines
//	DELETE /v1/jobs/{id}        cancel a job cooperatively
//	GET    /healthz             liveness probe
//	GET    /v1/stats            request, cache, pool, and job counters
//	GET    /debug/vars          the same counters via expvar
//
// Engine requests with "mode":"async" (or a Prefer: respond-async
// header) are accepted with 202 and a job ID instead of being answered
// in the request; with -job-dir set, jobs persist across restarts and
// interrupted ones are re-queued on startup.
//
// Results are cached content-addressed (SHA-256 of the canonicalized
// netlist and options), so repeated identical requests are served
// byte-identically without re-running the engines. On SIGINT/SIGTERM
// the listener closes, in-flight requests drain, and the process exits
// zero.
//
// Exit codes follow the internal/cli contract: 0 after a clean drain,
// 1 on runtime failure (listener error, failed shutdown), 2 on bad
// flags or configuration.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.workers, "workers", 0, "max concurrent engine executions (0 = GOMAXPROCS)")
	flag.Int64Var(&cfg.cacheBytes, "cache-bytes", 64<<20, "result cache budget in bytes")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", 30*time.Second, "per-request deadline")
	flag.Int64Var(&cfg.maxBody, "max-body", 8<<20, "max request body bytes")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 15*time.Second, "max wait for in-flight requests on shutdown")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "opt-in pprof/expvar listener on a separate address (bind to localhost; never expose publicly)")
	flag.StringVar(&cfg.jobDir, "job-dir", "", "persistent async job store directory (empty = in-memory jobs that do not survive restarts)")
	flag.IntVar(&cfg.jobQueue, "job-queue", 64, "max queued async jobs before submissions get 429")
	flag.IntVar(&cfg.maxJobs, "max-jobs", 1024, "max retained async jobs before the oldest finished ones are garbage-collected")
	flag.DurationVar(&cfg.jobRetention, "job-retention", time.Hour, "how long finished async jobs stay queryable")
	flag.DurationVar(&cfg.jobTimeout, "job-timeout", 10*time.Minute, "per-job execution deadline, independent of -request-timeout")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(cli.ExitCode(err))
	}
}

// config gathers one invocation's settings.
type config struct {
	addr           string
	workers        int
	cacheBytes     int64
	requestTimeout time.Duration
	maxBody        int64
	drainTimeout   time.Duration
	debugAddr      string
	jobDir         string
	jobQueue       int
	maxJobs        int
	jobRetention   time.Duration
	jobTimeout     time.Duration
}

// validate rejects configurations the server cannot run with; the
// returned errors carry the usage exit code (2) through cli.ExitCode.
func (c config) validate() error {
	switch {
	case c.addr == "":
		return cli.Usage(errors.New("-addr must not be empty"))
	case c.workers < 0:
		return cli.Usage(fmt.Errorf("-workers must be >= 0 (got %d)", c.workers))
	case c.cacheBytes < 0:
		return cli.Usage(fmt.Errorf("-cache-bytes must be >= 0 (got %d)", c.cacheBytes))
	case c.requestTimeout <= 0:
		return cli.Usage(fmt.Errorf("-request-timeout must be positive (got %v)", c.requestTimeout))
	case c.maxBody <= 0:
		return cli.Usage(fmt.Errorf("-max-body must be positive (got %v)", c.maxBody))
	case c.drainTimeout <= 0:
		return cli.Usage(fmt.Errorf("-drain-timeout must be positive (got %v)", c.drainTimeout))
	case c.debugAddr != "" && c.debugAddr == c.addr:
		return cli.Usage(fmt.Errorf("-debug-addr must differ from -addr (both %q): the profiling listener must never share the public socket", c.addr))
	case c.jobQueue <= 0:
		return cli.Usage(fmt.Errorf("-job-queue must be positive (got %d)", c.jobQueue))
	case c.maxJobs <= 0:
		return cli.Usage(fmt.Errorf("-max-jobs must be positive (got %d)", c.maxJobs))
	case c.jobRetention <= 0:
		return cli.Usage(fmt.Errorf("-job-retention must be positive (got %v)", c.jobRetention))
	case c.jobTimeout <= 0:
		return cli.Usage(fmt.Errorf("-job-timeout must be positive (got %v)", c.jobTimeout))
	}
	return nil
}

// debugHandler assembles the profiling mux served on -debug-addr: the
// full net/http/pprof surface plus the expvar counters. It is mounted
// on its own listener, never the public one, so operators can firewall
// it by address — pprof exposes heap contents and must not be public.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func run(cfg config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	s, err := serve.New(serve.Config{
		Workers:        cfg.workers,
		CacheBytes:     cfg.cacheBytes,
		RequestTimeout: cfg.requestTimeout,
		MaxBody:        cfg.maxBody,
		JobDir:         cfg.jobDir,
		JobQueue:       cfg.jobQueue,
		MaxJobs:        cfg.maxJobs,
		JobRetention:   cfg.jobRetention,
		JobTimeout:     cfg.jobTimeout,
	})
	if err != nil {
		return err
	}
	s.PublishExpvar()

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("/debug/vars", expvar.Handler())

	srv := &http.Server{Addr: cfg.addr, Handler: mux}
	errc := make(chan error, 2)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", cfg.addr)

	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		debugSrv = &http.Server{Addr: cfg.debugAddr, Handler: debugHandler()}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("debug listener: %w", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serve: pprof/expvar debug listener on %s (do not expose publicly)\n", cfg.debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// A listener failed before any shutdown was requested; release
		// the job scheduler too instead of leaking it on the error path.
		s.Close()
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting connections, let in-flight requests finish.
	fmt.Fprintln(os.Stderr, "serve: shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if debugSrv != nil {
		// The debug listener has no long-lived requests worth draining;
		// close it outright so only the public drain gates the exit.
		_ = debugSrv.Close()
	}
	// End the long-lived job-event streams before Shutdown: Shutdown
	// waits for active requests, and a subscriber blocked on a job that
	// outlives the drain window would otherwise hold the exit until the
	// deadline and turn a clean SIGTERM into a failed shutdown.
	s.DrainStreams()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// Stop the job scheduler after the listener drains. Jobs cut off
	// mid-run keep a running-state journal and are re-queued by the next
	// process on the same -job-dir.
	s.Close()
	return nil
}
