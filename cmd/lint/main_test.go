package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

const fixtureDir = "../../testdata/lint"

func runText(t *testing.T, path string) (string, bool) {
	t.Helper()
	var sb strings.Builder
	failed, err := run(&sb, "", "", []string{path}, false, "info", "error", lint.Options{})
	if err != nil {
		t.Fatalf("run %s: %v", path, err)
	}
	return sb.String(), failed
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		file     string
		wantRule string
		wantFail bool
	}{
		{"clean.bench", "", false},
		{"stuck.bench", lint.RuleConstantLine, true},
		{"dupcone.bench", lint.RuleDuplicateCone, false},
		{"undriven.bench", lint.RuleUnusedInput, false},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			out, failed := runText(t, filepath.Join(fixtureDir, tc.file))
			if failed != tc.wantFail {
				t.Errorf("failed = %v, want %v\n%s", failed, tc.wantFail, out)
			}
			if tc.wantRule != "" && !strings.Contains(out, tc.wantRule) {
				t.Errorf("output missing rule %s:\n%s", tc.wantRule, out)
			}
		})
	}
}

func TestCleanFixtureHasNoWarnings(t *testing.T) {
	out, _ := runText(t, filepath.Join(fixtureDir, "clean.bench"))
	if strings.Contains(out, "  warning") || strings.Contains(out, "  error") {
		t.Errorf("clean fixture should produce only info findings:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	var sb strings.Builder
	failed, err := run(&sb, "", "", []string{filepath.Join(fixtureDir, "stuck.bench")}, true, "info", "error", lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("stuck fixture must fail at -fail error")
	}
	var reports []struct {
		Circuit  string         `json:"circuit"`
		Errors   int            `json:"errors"`
		Findings []lint.Finding `json:"findings"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &reports); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, sb.String())
	}
	if len(reports) != 1 || reports[0].Circuit != "stuck" || reports[0].Errors == 0 {
		t.Fatalf("unexpected report shape: %+v", reports)
	}
	found := false
	for _, f := range reports[0].Findings {
		if f.Rule == lint.RuleConstantLine && f.Severity == lint.Error && f.Name == "k" {
			found = true
		}
	}
	if !found {
		t.Errorf("JSON output missing %s on signal k:\n%s", lint.RuleConstantLine, sb.String())
	}
}

func TestFailSeverityFlag(t *testing.T) {
	var sb strings.Builder
	failed, err := run(&sb, "", "", []string{filepath.Join(fixtureDir, "undriven.bench")}, false, "info", "warning", lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("undriven fixture must fail at -fail warning")
	}
}

func TestGenSpecAndMultipleInputs(t *testing.T) {
	var sb strings.Builder
	failed, err := run(&sb, "", "c17", []string{filepath.Join(fixtureDir, "clean.bench")}, false, "info", "error", lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("clean inputs must not fail:\n%s", sb.String())
	}
	if got := strings.Count(sb.String(), "finding(s)"); got != 2 {
		t.Errorf("expected 2 report headers, got %d:\n%s", got, sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := run(&sb, "", "", nil, false, "info", "error", lint.Options{}); err == nil {
		t.Error("expected error with no inputs")
	}
	if _, err := run(&sb, "", "", []string{"no/such/file.bench"}, false, "info", "error", lint.Options{}); err == nil {
		t.Error("expected error for missing file")
	}
	if _, err := run(&sb, "", "c17", nil, false, "frob", "error", lint.Options{}); err == nil {
		t.Error("expected error for bad severity name")
	}
	bad := filepath.Join(t.TempDir(), "bad.bench")
	if err := os.WriteFile(bad, []byte("z = FROB(a)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(&sb, "", "", []string{bad}, false, "info", "error", lint.Options{}); err == nil {
		t.Error("expected error for malformed bench input")
	}
}
