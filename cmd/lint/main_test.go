package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

const fixtureDir = "../../testdata/lint"

func runText(t *testing.T, path string) (string, bool) {
	t.Helper()
	var sb strings.Builder
	failed, err := run(&sb, config{paths: []string{path}, sevName: "info", failName: "error"})
	if err != nil {
		t.Fatalf("run %s: %v", path, err)
	}
	return sb.String(), failed
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		file     string
		wantRule string
		wantFail bool
	}{
		{"clean.bench", "", false},
		{"stuck.bench", lint.RuleConstantLine, true},
		{"dupcone.bench", lint.RuleDuplicateCone, false},
		{"undriven.bench", lint.RuleUnusedInput, false},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			out, failed := runText(t, filepath.Join(fixtureDir, tc.file))
			if failed != tc.wantFail {
				t.Errorf("failed = %v, want %v\n%s", failed, tc.wantFail, out)
			}
			if tc.wantRule != "" && !strings.Contains(out, tc.wantRule) {
				t.Errorf("output missing rule %s:\n%s", tc.wantRule, out)
			}
		})
	}
}

func TestCleanFixtureHasNoWarnings(t *testing.T) {
	out, _ := runText(t, filepath.Join(fixtureDir, "clean.bench"))
	if strings.Contains(out, "  warning") || strings.Contains(out, "  error") {
		t.Errorf("clean fixture should produce only info findings:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	var sb strings.Builder
	failed, err := run(&sb, config{paths: []string{filepath.Join(fixtureDir, "stuck.bench")}, jsonOut: true, sevName: "info", failName: "error"})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("stuck fixture must fail at -fail error")
	}
	var reports []struct {
		Circuit  string         `json:"circuit"`
		Errors   int            `json:"errors"`
		Findings []lint.Finding `json:"findings"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &reports); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, sb.String())
	}
	if len(reports) != 1 || reports[0].Circuit != "stuck" || reports[0].Errors == 0 {
		t.Fatalf("unexpected report shape: %+v", reports)
	}
	found := false
	for _, f := range reports[0].Findings {
		if f.Rule == lint.RuleConstantLine && f.Severity == lint.Error && f.Name == "k" {
			found = true
		}
	}
	if !found {
		t.Errorf("JSON output missing %s on signal k:\n%s", lint.RuleConstantLine, sb.String())
	}
}

func TestFailSeverityFlag(t *testing.T) {
	var sb strings.Builder
	failed, err := run(&sb, config{paths: []string{filepath.Join(fixtureDir, "undriven.bench")}, sevName: "info", failName: "warning"})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("undriven fixture must fail at -fail warning")
	}
}

func TestGenSpecAndMultipleInputs(t *testing.T) {
	var sb strings.Builder
	failed, err := run(&sb, config{genSpec: "c17", paths: []string{filepath.Join(fixtureDir, "clean.bench")}, sevName: "info", failName: "error"})
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("clean inputs must not fail:\n%s", sb.String())
	}
	if got := strings.Count(sb.String(), "finding(s)"); got != 2 {
		t.Errorf("expected 2 report headers, got %d:\n%s", got, sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := run(&sb, config{sevName: "info", failName: "error"}); err == nil {
		t.Error("expected error with no inputs")
	}
	if _, err := run(&sb, config{paths: []string{"no/such/file.bench"}, sevName: "info", failName: "error"}); err == nil {
		t.Error("expected error for missing file")
	}
	if _, err := run(&sb, config{genSpec: "c17", sevName: "frob", failName: "error"}); err == nil {
		t.Error("expected error for bad severity name")
	}
	bad := filepath.Join(t.TempDir(), "bad.bench")
	if err := os.WriteFile(bad, []byte("z = FROB(a)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(&sb, config{paths: []string{bad}, sevName: "info", failName: "error"}); err == nil {
		t.Error("expected error for malformed bench input")
	}
}

// TestJSONGoldenFile pins the exact -json output for the redundant
// fixture: byte-for-byte stability, including the rule-then-signal
// ordering of findings. Regenerate with:
//
//	go run ./cmd/lint -json -severity info testdata/lint/redundant.bench > testdata/lint/redundant.golden.json
func TestJSONGoldenFile(t *testing.T) {
	var sb strings.Builder
	failed, err := run(&sb, config{paths: []string{filepath.Join(fixtureDir, "redundant.bench")}, jsonOut: true, sevName: "info", failName: "error"})
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Error("redundant fixture has only warnings; must not fail at -fail error")
	}
	want, err := os.ReadFile(filepath.Join(fixtureDir, "redundant.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Errorf("JSON output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}

// TestJSONFindingsOrdered checks the ordering contract on a fixture
// with findings from several passes: rule ID ascending, then signal.
func TestJSONFindingsOrdered(t *testing.T) {
	var sb strings.Builder
	if _, err := run(&sb, config{paths: []string{filepath.Join(fixtureDir, "stuck.bench")}, jsonOut: true, sevName: "info", failName: "error"}); err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		Findings []lint.Finding `json:"findings"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &reports); err != nil {
		t.Fatal(err)
	}
	fs := reports[0].Findings
	if len(fs) < 2 {
		t.Fatalf("expected several findings, got %d", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		a, b := fs[i-1], fs[i]
		if a.Rule > b.Rule || (a.Rule == b.Rule && a.Signal > b.Signal) {
			t.Errorf("findings out of order at %d: %s/%d before %s/%d", i, a.Rule, a.Signal, b.Rule, b.Signal)
		}
	}
}

// TestImplicationsFlag smoke-tests both renderers of -implications.
func TestImplicationsFlag(t *testing.T) {
	var sb strings.Builder
	if _, err := run(&sb, config{paths: []string{filepath.Join(fixtureDir, "redundant.bench")}, implications: true, sevName: "info", failName: "error"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "implications:") || !strings.Contains(sb.String(), "redundant n1 s-a-0") {
		t.Errorf("text summary missing implication block:\n%s", sb.String())
	}
	sb.Reset()
	if _, err := run(&sb, config{paths: []string{filepath.Join(fixtureDir, "redundant.bench")}, implications: true, jsonOut: true, sevName: "info", failName: "error"}); err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		Implic *struct {
			Learned   int `json:"learned"`
			Redundant []struct {
				Fault string `json:"fault"`
			} `json:"redundant"`
		} `json:"implications"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &reports); err != nil {
		t.Fatal(err)
	}
	if reports[0].Implic == nil || len(reports[0].Implic.Redundant) == 0 {
		t.Errorf("JSON implications summary missing:\n%s", sb.String())
	}
}
