// Command lint runs the static netlist analyzer over one or more
// circuits and reports findings: structural hygiene defects, lines proven
// constant (and the stuck-at faults they make untestable), duplicated
// cones, COP-ranked random-pattern-resistant stems, and the fanout-free /
// reconvergence structure that decides which TPI planner applies.
//
// Inputs are positional netlist paths (.bench, or .v/.sv structural
// Verilog) and/or the usual -bench / -gen flags. The exit code is 0 when
// every circuit is clean at the -fail severity, 1 when any finding
// reaches it (default: error), and 2 on bad usage or unreadable input.
//
// Examples:
//
//	lint testdata/lint/stuck.bench
//	lint -json testdata/c17.bench
//	lint -gen rpr:cones=3,width=14 -severity info -top 10
//	lint -fail warning *.bench
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/internal/implic"
	"repro/internal/lint"
	"repro/internal/netlist"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "input .bench netlist (alternative to positional paths)")
		genSpec   = flag.String("gen", "", "generator spec (see internal/cli)")
		jsonOut   = flag.Bool("json", false, "emit findings as JSON")
		sevName   = flag.String("severity", "info", "minimum severity to report: info | warning | error")
		failName  = flag.String("fail", "error", "minimum severity that fails the run: info | warning | error")
		top       = flag.Int("top", 0, "hard-stem findings to report (0 = default 5, negative = off)")
		hardTh    = flag.Float64("hard", 0, "COP detect-prob threshold for hard stems (0 = default 1e-3)")
		maxFanout = flag.Int("max-fanout", 0, "flag signals with fanout above this (0 = default 64, negative = off)")
		maxDepth  = flag.Int("max-depth", 0, "flag circuits deeper than this (0 = default 512, negative = off)")
		implics   = flag.Bool("implications", false, "summarise the static implication engine per circuit (learned implications, constants, dominators, redundant faults)")
	)
	flag.Parse()
	failed, err := run(os.Stdout, config{
		benchPath:    *benchPath,
		genSpec:      *genSpec,
		paths:        flag.Args(),
		jsonOut:      *jsonOut,
		sevName:      *sevName,
		failName:     *failName,
		implications: *implics,
		opts: lint.Options{
			MaxFanout:     *maxFanout,
			MaxDepth:      *maxDepth,
			HardThreshold: *hardTh,
			TopStems:      *top,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		// Every run error here is a usage-or-input failure (bad flags,
		// unreadable netlist), which the shared contract maps to 2.
		os.Exit(cli.ExitCode(cli.Usage(err)))
	}
	if failed {
		os.Exit(cli.ExitFailure)
	}
}

// config gathers one invocation's settings.
type config struct {
	benchPath, genSpec string
	paths              []string
	jsonOut            bool
	sevName, failName  string
	implications       bool
	opts               lint.Options
}

// jsonReport is the stable JSON shape emitted per circuit.
type jsonReport struct {
	Circuit  string            `json:"circuit"`
	Errors   int               `json:"errors"`
	Warnings int               `json:"warnings"`
	Infos    int               `json:"infos"`
	Findings []lint.Finding    `json:"findings"`
	Implic   *jsonImplications `json:"implications,omitempty"`
}

// jsonImplications summarises one circuit's implication engine run.
type jsonImplications struct {
	Gates        int             `json:"gates"`
	Implications int             `json:"implications"`
	Learned      int             `json:"learned"`
	Dead         int             `json:"dead"`
	Dominated    int             `json:"dominated"`
	Constants    []string        `json:"constants,omitempty"`
	Redundant    []jsonRedundant `json:"redundant,omitempty"`
}

// jsonRedundant is one statically-proven-untestable fault.
type jsonRedundant struct {
	Fault  string `json:"fault"`
	Reason string `json:"reason"`
}

// analyzed pairs a report with the circuit it came from, which the
// implication summary needs.
type analyzed struct {
	c   *netlist.Circuit
	rep *lint.Report
}

// run lints every requested circuit and reports whether any finding
// reached the failure severity.
func run(w io.Writer, cfg config) (bool, error) {
	minSev, err := lint.ParseSeverity(cfg.sevName)
	if err != nil {
		return false, err
	}
	failSev, err := lint.ParseSeverity(cfg.failName)
	if err != nil {
		return false, err
	}
	if cfg.benchPath == "" && cfg.genSpec == "" && len(cfg.paths) == 0 {
		return false, fmt.Errorf("provide netlist paths, -bench <file> or -gen <spec>")
	}

	var circuits []analyzed
	if cfg.benchPath != "" || cfg.genSpec != "" {
		c, err := cli.LoadCircuit(cfg.benchPath, cfg.genSpec)
		if err != nil {
			return false, err
		}
		circuits = append(circuits, analyzed{c, lint.Analyze(c, cfg.opts)})
	}
	for _, p := range cfg.paths {
		c, err := cli.LoadCircuit(p, "")
		if err != nil {
			return false, err
		}
		circuits = append(circuits, analyzed{c, lint.Analyze(c, cfg.opts)})
	}

	failed := false
	var jsonReports []jsonReport
	for _, a := range circuits {
		rep := a.rep
		if s, ok := rep.MaxSeverity(); ok && s >= failSev {
			failed = true
		}
		counts := rep.CountBySeverity()
		var impl *implicSummary
		if cfg.implications {
			impl = summarizeImplications(a.c)
		}
		if cfg.jsonOut {
			findings := rep.Filter(minSev)
			if findings == nil {
				findings = []lint.Finding{}
			}
			// Stable output contract: findings ordered by rule ID, then
			// signal ID, independent of pass ordering and severity.
			sort.SliceStable(findings, func(i, j int) bool {
				if findings[i].Rule != findings[j].Rule {
					return findings[i].Rule < findings[j].Rule
				}
				return findings[i].Signal < findings[j].Signal
			})
			jr := jsonReport{
				Circuit:  rep.Circuit,
				Errors:   counts[lint.Error],
				Warnings: counts[lint.Warning],
				Infos:    counts[lint.Info],
				Findings: findings,
			}
			if impl != nil {
				jr.Implic = impl.json()
			}
			jsonReports = append(jsonReports, jr)
			continue
		}
		fmt.Fprintf(w, "%s: %d finding(s): %d error(s), %d warning(s), %d info\n",
			rep.Circuit, len(rep.Findings), counts[lint.Error], counts[lint.Warning], counts[lint.Info])
		for _, f := range rep.Filter(minSev) {
			fmt.Fprintf(w, "  %s\n", f)
		}
		if impl != nil {
			impl.writeText(w)
		}
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReports); err != nil {
			return false, err
		}
	}
	return failed, nil
}

// implicSummary carries one circuit's engine results for both renderers.
type implicSummary struct {
	stats     implic.Stats
	constants []string
	redundant []jsonRedundant
	dominated int
}

// summarizeImplications runs the implication engine on the circuit.
func summarizeImplications(c *netlist.Circuit) *implicSummary {
	e := implic.New(c, implic.Options{})
	s := &implicSummary{stats: e.Stats()}
	for _, sig := range e.Constants() {
		v, _ := e.ConstValue(sig)
		bit := 0
		if v {
			bit = 1
		}
		s.constants = append(s.constants, fmt.Sprintf("%s=%d", c.GateName(sig), bit))
	}
	for _, r := range e.Redundant() {
		s.redundant = append(s.redundant, jsonRedundant{Fault: r.F.Name(c), Reason: r.Reason})
	}
	for sig := 0; sig < c.NumGates(); sig++ {
		if _, ok := e.Dominator(sig); ok {
			s.dominated++
		}
	}
	return s
}

func (s *implicSummary) json() *jsonImplications {
	return &jsonImplications{
		Gates:        s.stats.Gates,
		Implications: s.stats.Implications,
		Learned:      s.stats.Learned,
		Dead:         s.stats.Dead,
		Dominated:    s.dominated,
		Constants:    s.constants,
		Redundant:    s.redundant,
	}
}

func (s *implicSummary) writeText(w io.Writer) {
	fmt.Fprintf(w, "  implications: %d stored (%d learned) over %d gates; %d constant line(s), %d dead, %d dominated\n",
		s.stats.Implications, s.stats.Learned, s.stats.Gates, s.stats.Constants, s.stats.Dead, s.dominated)
	for _, c := range s.constants {
		fmt.Fprintf(w, "    constant %s\n", c)
	}
	for _, r := range s.redundant {
		fmt.Fprintf(w, "    redundant %s: %s\n", r.Fault, r.Reason)
	}
}
