// Command lint runs the static netlist analyzer over one or more
// circuits and reports findings: structural hygiene defects, lines proven
// constant (and the stuck-at faults they make untestable), duplicated
// cones, COP-ranked random-pattern-resistant stems, and the fanout-free /
// reconvergence structure that decides which TPI planner applies.
//
// Inputs are positional netlist paths (.bench, or .v/.sv structural
// Verilog) and/or the usual -bench / -gen flags. The exit code is 0 when
// every circuit is clean at the -fail severity, 1 when any finding
// reaches it (default: error), and 2 on bad usage or unreadable input.
//
// Examples:
//
//	lint testdata/lint/stuck.bench
//	lint -json testdata/c17.bench
//	lint -gen rpr:cones=3,width=14 -severity info -top 10
//	lint -fail warning *.bench
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/lint"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "input .bench netlist (alternative to positional paths)")
		genSpec   = flag.String("gen", "", "generator spec (see internal/cli)")
		jsonOut   = flag.Bool("json", false, "emit findings as JSON")
		sevName   = flag.String("severity", "info", "minimum severity to report: info | warning | error")
		failName  = flag.String("fail", "error", "minimum severity that fails the run: info | warning | error")
		top       = flag.Int("top", 0, "hard-stem findings to report (0 = default 5, negative = off)")
		hardTh    = flag.Float64("hard", 0, "COP detect-prob threshold for hard stems (0 = default 1e-3)")
		maxFanout = flag.Int("max-fanout", 0, "flag signals with fanout above this (0 = default 64, negative = off)")
		maxDepth  = flag.Int("max-depth", 0, "flag circuits deeper than this (0 = default 512, negative = off)")
	)
	flag.Parse()
	failed, err := run(os.Stdout, *benchPath, *genSpec, flag.Args(), *jsonOut, *sevName, *failName, lint.Options{
		MaxFanout:     *maxFanout,
		MaxDepth:      *maxDepth,
		HardThreshold: *hardTh,
		TopStems:      *top,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// jsonReport is the stable JSON shape emitted per circuit.
type jsonReport struct {
	Circuit  string         `json:"circuit"`
	Errors   int            `json:"errors"`
	Warnings int            `json:"warnings"`
	Infos    int            `json:"infos"`
	Findings []lint.Finding `json:"findings"`
}

// run lints every requested circuit and reports whether any finding
// reached the failure severity.
func run(w io.Writer, benchPath, genSpec string, paths []string, jsonOut bool, sevName, failName string, opts lint.Options) (bool, error) {
	minSev, err := lint.ParseSeverity(sevName)
	if err != nil {
		return false, err
	}
	failSev, err := lint.ParseSeverity(failName)
	if err != nil {
		return false, err
	}
	if benchPath == "" && genSpec == "" && len(paths) == 0 {
		return false, fmt.Errorf("provide netlist paths, -bench <file> or -gen <spec>")
	}

	var reports []*lint.Report
	if benchPath != "" || genSpec != "" {
		c, err := cli.LoadCircuit(benchPath, genSpec)
		if err != nil {
			return false, err
		}
		reports = append(reports, lint.Analyze(c, opts))
	}
	for _, p := range paths {
		c, err := cli.LoadCircuit(p, "")
		if err != nil {
			return false, err
		}
		reports = append(reports, lint.Analyze(c, opts))
	}

	failed := false
	var jsonReports []jsonReport
	for _, rep := range reports {
		if s, ok := rep.MaxSeverity(); ok && s >= failSev {
			failed = true
		}
		counts := rep.CountBySeverity()
		if jsonOut {
			findings := rep.Filter(minSev)
			if findings == nil {
				findings = []lint.Finding{}
			}
			jsonReports = append(jsonReports, jsonReport{
				Circuit:  rep.Circuit,
				Errors:   counts[lint.Error],
				Warnings: counts[lint.Warning],
				Infos:    counts[lint.Info],
				Findings: findings,
			})
			continue
		}
		fmt.Fprintf(w, "%s: %d finding(s): %d error(s), %d warning(s), %d info\n",
			rep.Circuit, len(rep.Findings), counts[lint.Error], counts[lint.Warning], counts[lint.Info])
		for _, f := range rep.Filter(minSev) {
			fmt.Fprintf(w, "  %s\n", f)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReports); err != nil {
			return false, err
		}
	}
	return failed, nil
}
