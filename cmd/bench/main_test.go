package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/perf"
)

// runJSON drives one in-process invocation that writes the JSON report
// to stdout.
func runJSON(t *testing.T, cfg config) *perf.Report {
	t.Helper()
	var out bytes.Buffer
	failed, err := run(&out, io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("run reported failure")
	}
	rep, err := perf.Decode(&out)
	if err != nil {
		t.Fatalf("output is not a valid report: %v", err)
	}
	return rep
}

// TestDeterministicModuloTimings is the regression test the JSON
// contract rests on: two runs with -iterations fixed must produce
// schema-identical reports once the measured fields are stripped —
// same benchmarks, same order, same params, same iteration counts.
func TestDeterministicModuloTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the engine suite twice")
	}
	cfg := config{jsonOut: true, short: true, iterations: 1, warmup: 1,
		minTime: time.Second, tolerance: 10}
	a := runJSON(t, cfg)
	b := runJSON(t, cfg)
	a.StripMeasurements()
	b.StripMeasurements()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reports differ beyond timing fields:\n%+v\n%+v", a, b)
	}
}

// TestRunWritesValidReportFile checks -o emits a file that -check
// accepts and that self-comparison passes the tolerance gate.
func TestRunWritesValidReportFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the engine suite")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	cfg := config{out: out, short: true, iterations: 1, warmup: 1,
		minTime: time.Second, tolerance: 10, only: "", jsonOut: false}
	var table bytes.Buffer
	if failed, err := run(&table, io.Discard, cfg); err != nil || failed {
		t.Fatalf("run: failed=%v err=%v", failed, err)
	}
	if !strings.Contains(table.String(), "fsim/serial") {
		t.Error("table output missing fsim/serial row")
	}

	var check bytes.Buffer
	cfg2 := config{check: out, baseline: out, tolerance: 10, minTime: time.Second, warmup: 1}
	failed, err := run(&check, io.Discard, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("self-comparison failed the gate:\n%s", check.String())
	}
	if !strings.Contains(check.String(), "within 10.0x tolerance") {
		t.Errorf("check output = %q", check.String())
	}
}

// TestCheckRejectsBrokenReport covers the -check validation path.
func TestCheckRejectsBrokenReport(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(io.Discard, io.Discard, config{check: bad, tolerance: 10, minTime: time.Second}); err == nil {
		t.Error("invalid report accepted")
	}
	if _, err := run(io.Discard, io.Discard, config{check: filepath.Join(dir, "absent.json"), tolerance: 10, minTime: time.Second}); err == nil {
		t.Error("missing report accepted")
	}
}

// TestBaselineGateFails pins that a genuine order-of-magnitude
// regression trips the gate (exit path returns failed=true).
func TestBaselineGateFails(t *testing.T) {
	dir := t.TempDir()
	fast := validTestReport()
	slow := validTestReport()
	slow.Benchmarks[0].NsPerOp *= 100
	fastPath := writeReport(t, filepath.Join(dir, "fast.json"), fast)
	slowPath := writeReport(t, filepath.Join(dir, "slow.json"), slow)
	var out bytes.Buffer
	failed, err := run(&out, io.Discard, config{check: slowPath, baseline: fastPath,
		tolerance: 10, minTime: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Errorf("100x regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "slower") {
		t.Errorf("violation output = %q", out.String())
	}
}

// TestUsageErrors pins the flag-validation exit contract.
func TestUsageErrors(t *testing.T) {
	for _, cfg := range []config{
		{iterations: -1, warmup: 1, minTime: time.Second, tolerance: 10},
		{warmup: -1, minTime: time.Second, tolerance: 10},
		{minTime: 0, tolerance: 10},
		{minTime: time.Second, tolerance: 0.5},
		{minTime: time.Second, tolerance: 10, check: "x.json", list: true},
	} {
		if _, err := run(io.Discard, io.Discard, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestListMode checks -list enumerates without running.
func TestListMode(t *testing.T) {
	var out bytes.Buffer
	failed, err := run(&out, io.Discard, config{list: true, short: true,
		minTime: time.Second, tolerance: 10})
	if err != nil || failed {
		t.Fatalf("list: failed=%v err=%v", failed, err)
	}
	for _, name := range []string{"fsim/serial", "atpg/podem/learn=on", "tpi/hybrid", "serve/plan/cache=miss"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list output missing %s", name)
		}
	}
}

// validTestReport builds a small schema-valid report.
func validTestReport() *perf.Report {
	res := func(name, group string) perf.Result {
		return perf.Result{Name: name, Group: group, GOMAXPROCS: 1, Iterations: 1,
			TotalNs: 1000, NsPerOp: 1000}
	}
	return &perf.Report{
		Schema: perf.Schema,
		Suite:  perf.SuiteName,
		Meta: perf.Meta{GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64",
			NumCPU: 1, GOMAXPROCS: 1},
		Benchmarks: []perf.Result{
			res("fsim/a", perf.GroupFsim), res("atpg/a", perf.GroupATPG),
			res("tpi/a", perf.GroupTPI), res("serve/a", perf.GroupServe),
		},
	}
}

// writeReport encodes a report to path.
func writeReport(t *testing.T, path string, rep *perf.Report) string {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rep.Encode(f); err != nil {
		t.Fatal(err)
	}
	return path
}
