// Command bench runs the canonical performance suite (internal/perf)
// over the engines — fault simulation serial and parallel, PODEM with
// and without learned implications, the test point planners with and
// without the static pre-prune, and the HTTP serving stack's cache hit
// and miss paths — and emits a machine-readable JSON report
// (BENCH_*.json) plus a human-readable table.
//
// The report follows the canonical schema (perf.Schema); -check
// validates an existing report without running anything, and -baseline
// compares a run (or a checked report) against a committed baseline
// with a generous tolerance gate so only order-of-magnitude
// regressions fail. -cpuprofile and -memprofile capture engine
// profiles of the measured run for pprof.
//
// Exit codes follow the internal/cli contract: 0 clean, 1 when the
// tolerance gate fails (or the run itself errors), 2 on bad flags or
// an output-file write failure.
//
// Examples:
//
//	bench -short -iterations 3 -o BENCH_5.json
//	bench -only fsim/parallel -markdown
//	bench -check BENCH_5.json -baseline testdata/bench/baseline.json
//	bench -cpuprofile cpu.out -only atpg
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/perf"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.out, "o", "", "write the JSON report to this file")
	flag.BoolVar(&cfg.jsonOut, "json", false, "write the JSON report to stdout instead of the table")
	flag.IntVar(&cfg.iterations, "iterations", 0, "fixed measured iterations per benchmark (0 = calibrate against -mintime)")
	flag.IntVar(&cfg.warmup, "warmup", 1, "warmup iterations per benchmark")
	flag.DurationVar(&cfg.minTime, "mintime", time.Second, "calibration target per benchmark when -iterations is 0")
	flag.BoolVar(&cfg.short, "short", false, "scaled-down workloads (the CI smoke configuration)")
	flag.StringVar(&cfg.only, "only", "", "run only benchmarks whose name contains this substring")
	flag.BoolVar(&cfg.list, "list", false, "list registered benchmarks and exit")
	flag.BoolVar(&cfg.markdown, "markdown", false, "render the result table as markdown")
	flag.StringVar(&cfg.baseline, "baseline", "", "compare against this baseline report; violations exit 1")
	flag.Float64Var(&cfg.tolerance, "tolerance", 10, "ns/op regression factor the baseline gate tolerates")
	flag.StringVar(&cfg.check, "check", "", "validate this existing report (and compare via -baseline) instead of running")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the measured run to this file")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	failed, err := run(os.Stdout, os.Stderr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(cli.ExitCode(err))
	}
	if failed {
		os.Exit(cli.ExitFailure)
	}
}

// config gathers one invocation's settings.
type config struct {
	out        string
	jsonOut    bool
	iterations int
	warmup     int
	minTime    time.Duration
	short      bool
	only       string
	list       bool
	markdown   bool
	baseline   string
	tolerance  float64
	check      string
	cpuprofile string
	memprofile string
}

// validate rejects configurations the runner cannot honor; the errors
// carry the usage exit code (2) through cli.ExitCode.
func (c config) validate() error {
	switch {
	case c.iterations < 0:
		return cli.Usage(fmt.Errorf("-iterations must be >= 0 (got %d)", c.iterations))
	case c.warmup < 0:
		return cli.Usage(fmt.Errorf("-warmup must be >= 0 (got %d)", c.warmup))
	case c.minTime <= 0:
		return cli.Usage(fmt.Errorf("-mintime must be positive (got %v)", c.minTime))
	case c.tolerance <= 1:
		return cli.Usage(fmt.Errorf("-tolerance must be > 1 (got %v)", c.tolerance))
	case c.check != "" && (c.list || c.cpuprofile != "" || c.memprofile != ""):
		return cli.Usage(errors.New("-check validates an existing report; it cannot be combined with -list or profiling"))
	}
	return nil
}

// run executes one invocation and reports whether the tolerance gate
// failed. Usage problems and I/O failures return as errors.
func run(stdout, stderr io.Writer, cfg config) (failed bool, err error) {
	if err := cfg.validate(); err != nil {
		return false, err
	}
	if cfg.list {
		for _, b := range perf.Suite(cfg.short) {
			if cfg.only != "" && !strings.Contains(b.Name, cfg.only) {
				continue
			}
			fmt.Fprintf(stdout, "%-30s %-6s %s\n", b.Name, b.Group, b.Info)
		}
		return false, nil
	}
	if cfg.check != "" {
		return checkReport(stdout, cfg)
	}

	if cfg.memprofile != "" {
		defer func() {
			if err != nil {
				return
			}
			err = writeHeapProfile(cfg.memprofile)
		}()
	}
	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			return false, &cli.WriteError{Path: cfg.cpuprofile, Err: err}
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return false, err
		}
		defer pprof.StopCPUProfile()
	}

	rep, err := perf.Run(perf.Suite(cfg.short), perf.Config{
		Iterations: cfg.iterations,
		Warmup:     cfg.warmup,
		MinTime:    cfg.minTime,
		Short:      cfg.short,
		Filter:     cfg.only,
		Progress:   stderr,
	})
	if err != nil {
		return false, err
	}
	if err := perf.Validate(rep); err != nil && cfg.only == "" {
		// A filtered run legitimately misses groups; a full run that
		// fails its own schema is a harness bug.
		return false, err
	}

	if cfg.out != "" {
		if err := cli.WriteFile(cfg.out, rep.Encode); err != nil {
			return false, err
		}
		fmt.Fprintf(stderr, "bench: wrote %s (%d benchmarks)\n", cfg.out, len(rep.Benchmarks))
	}
	if cfg.jsonOut {
		if err := rep.Encode(stdout); err != nil {
			return false, err
		}
	} else if err := reportTable(rep).render(cfg.markdown, stdout); err != nil {
		return false, err
	}
	if cfg.baseline != "" {
		return compareBaseline(stdout, cfg, rep)
	}
	return false, nil
}

// checkReport validates an existing report file, re-renders its table
// (so committed reports can be turned back into docs), and, when
// -baseline is given, runs the tolerance gate against it.
func checkReport(stdout io.Writer, cfg config) (bool, error) {
	rep, err := readReport(cfg.check)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(stdout, "%s: valid %s report, %d benchmarks\n", cfg.check, rep.Schema, len(rep.Benchmarks))
	if cfg.jsonOut {
		if err := rep.Encode(stdout); err != nil {
			return false, err
		}
	} else if err := reportTable(rep).render(cfg.markdown, stdout); err != nil {
		return false, err
	}
	if cfg.baseline != "" {
		return compareBaseline(stdout, cfg, rep)
	}
	return false, nil
}

// compareBaseline applies the tolerance gate and prints violations.
func compareBaseline(stdout io.Writer, cfg config, rep *perf.Report) (bool, error) {
	base, err := readReport(cfg.baseline)
	if err != nil {
		return false, err
	}
	violations := perf.Compare(base, rep, cfg.tolerance)
	for _, v := range violations {
		fmt.Fprintf(stdout, "violation: %s\n", v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(stdout, "%d violation(s) against %s at %.1fx tolerance\n",
			len(violations), cfg.baseline, cfg.tolerance)
		return true, nil
	}
	fmt.Fprintf(stdout, "within %.1fx tolerance of %s\n", cfg.tolerance, cfg.baseline)
	return false, nil
}

// readReport loads and schema-validates a report file.
func readReport(path string) (*perf.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := perf.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// benchTable adapts an exp.Table so both renderings share one builder.
type benchTable struct{ t *exp.Table }

// reportTable lays the report out as the human-readable summary: one
// row per benchmark with its knobs and the measured rates.
func reportTable(rep *perf.Report) benchTable {
	t := &exp.Table{
		ID:    "BENCH",
		Title: fmt.Sprintf("canonical performance suite (%s, GOMAXPROCS base %d)", rep.Meta.GoVersion, rep.Meta.GOMAXPROCS),
		Columns: []string{
			"benchmark", "group", "params", "iters", "ms/op", "allocs/op", "MB/op",
		},
	}
	for _, b := range rep.Benchmarks {
		t.AddRow(b.Name, b.Group, paramString(b.Params), b.Iterations,
			fmt.Sprintf("%.3f", b.NsPerOp/1e6),
			fmt.Sprintf("%.0f", b.AllocsPerOp),
			fmt.Sprintf("%.2f", b.BytesPerOp/(1<<20)))
	}
	mode := "full"
	if rep.Meta.Short {
		mode = "short"
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%s workloads on %s/%s, %d CPU(s); parallel benchmarks pin GOMAXPROCS to their worker count",
		mode, rep.Meta.GOOS, rep.Meta.GOARCH, rep.Meta.NumCPU))
	return benchTable{t}
}

// render writes the table in the requested format.
func (bt benchTable) render(markdown bool, w io.Writer) error {
	if markdown {
		return bt.t.Markdown(w)
	}
	return bt.t.Write(w)
}

// paramString renders a params map deterministically as k=v pairs in
// key order.
func paramString(params map[string]string) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + params[k]
	}
	return strings.Join(parts, " ")
}

// writeHeapProfile forces a GC for up-to-date accounting and writes
// the heap profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return &cli.WriteError{Path: path, Err: err}
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return err
	}
	return f.Close()
}
