package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

var malformedBenchCases = []struct {
	name, src string
}{
	{"garbage", "INPUT(a\nOUTPUT z)\nnonsense\n"},
	{"unknown-gate", "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n"},
	{"undefined-fanin", "INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n"},
	{"no-outputs", "INPUT(a)\nz = NOT(a)\n"},
	{"combinational-loop", "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)\n"},
}

func writeBenchFile(t *testing.T, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bad.bench")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMalformedBenchRejected(t *testing.T) {
	for _, tc := range malformedBenchCases {
		t.Run(tc.name, func(t *testing.T) {
			p := writeBenchFile(t, tc.src)
			if err := run(context.Background(), p, "", 64, 1, "lfsr", "", 0, false, 0, false); err == nil {
				t.Errorf("expected error for %s input", tc.name)
			}
		})
	}
}

func TestLintFlag(t *testing.T) {
	stuck := writeBenchFile(t, "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nna = NOT(a)\nk = AND(a, na)\nz = OR(b, k)\n")
	if err := run(context.Background(), stuck, "", 64, 1, "lfsr", "", 0, false, 0, true); err == nil {
		t.Error("expected -lint to reject the stuck-constant circuit")
	}
	if err := run(context.Background(), "", "c17", 64, 1, "lfsr", "", 0, false, 0, true); err != nil {
		t.Errorf("-lint on clean c17: %v", err)
	}
}
