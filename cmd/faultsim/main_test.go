package main

import (
	"context"
	"errors"

	"os"
	"path/filepath"
	"repro/internal/cli"
	"testing"
)

func TestRunSources(t *testing.T) {
	if err := run(context.Background(), "", "c17", 128, 1, "lfsr", "", 64, false, 2, false); err != nil {
		t.Errorf("lfsr: %v", err)
	}
	if err := run(context.Background(), "", "c17", 1024, 1, "counter", "", 0, true, 0, false); err != nil {
		t.Errorf("counter: %v", err)
	}
	if err := run(context.Background(), "", "c17", 128, 1, "weighted", "", 0, false, 0, false); err != nil {
		t.Errorf("weighted: %v", err)
	}
	vec := filepath.Join(t.TempDir(), "v.vec")
	if err := os.WriteFile(vec, []byte("11111\n00000\n10101\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "", "c17", 128, 1, "file", vec, 0, false, 0, false); err != nil {
		t.Errorf("file: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "", "c17", 64, 1, "nope", "", 0, false, 0, false); err == nil {
		t.Error("expected error for unknown source")
	}
	if err := run(context.Background(), "", "c17", 64, 1, "file", "", 0, false, 0, false); err == nil {
		t.Error("expected error for missing vector path")
	}
	if err := run(context.Background(), "", "dag:inputs=32,gates=50", 64, 1, "counter", "", 0, false, 0, false); err == nil {
		t.Error("expected error for counter with too many inputs")
	}
}

func TestRunDeadlineExitsWithContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expire before the run starts
	err := run(ctx, "", "dag:gates=400,seed=2", 1<<20, 1, "lfsr", "", 0, false, 0, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if code := cli.ExitCode(err); code != cli.ExitDeadline {
		t.Fatalf("exit code = %d, want %d", code, cli.ExitDeadline)
	}
}
