// Command faultsim runs the bit-parallel stuck-at fault simulator over a
// circuit and reports coverage, the coverage curve, and the surviving
// hard faults.
//
// Examples:
//
//	faultsim -bench testdata/c17.bench -patterns 1024
//	faultsim -gen rpr:cones=3,width=14 -patterns 32768 -curve 2048
//	faultsim -gen cone:width=20 -source counter -hard 10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/pattern"
	"repro/internal/testability"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "input .bench netlist")
		genSpec   = flag.String("gen", "", "generator spec (see internal/cli)")
		patterns  = flag.Int("patterns", 32768, "maximum patterns to apply")
		seed      = flag.Uint64("seed", 1, "LFSR seed")
		source    = flag.String("source", "lfsr", "lfsr | counter | weighted | file")
		vecPath   = flag.String("vectors", "", "vector file for -source file")
		curve     = flag.Int("curve", 0, "print coverage curve with this step (0 = off)")
		uncol     = flag.Bool("uncollapsed", false, "simulate the uncollapsed fault universe")
		hard      = flag.Int("hard", 5, "list up to this many undetected faults with COP estimates")
		doLint    = flag.Bool("lint", false, "statically validate the input circuit and reject on lint errors")
		timeout   = flag.Duration("timeout", 0, "abort simulation after this duration (0 = none; expiry exits 3)")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *benchPath, *genSpec, *patterns, *seed, *source, *vecPath, *curve, *uncol, *hard, *doLint); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		code := cli.ExitCode(err)
		if code == cli.ExitDeadline {
			fmt.Fprintln(os.Stderr, "faultsim: -timeout expired; any results above are partial")
		}
		os.Exit(code)
	}
}

func run(ctx context.Context, benchPath, genSpec string, patterns int, seed uint64, source, vecPath string, curve int, uncol bool, hard int, doLint bool) error {
	c, err := cli.LoadCircuitChecked(benchPath, genSpec, doLint, os.Stderr)
	if err != nil {
		return err
	}
	fmt.Println(c)

	faults := fault.CollapsedUniverse(c)
	if uncol {
		faults = fault.Universe(c)
	}
	fmt.Printf("faults: %d (%s)\n", len(faults), map[bool]string{true: "uncollapsed", false: "collapsed"}[uncol])

	var src pattern.Source
	switch source {
	case "lfsr":
		src = pattern.NewLFSR(seed)
	case "counter":
		if c.NumInputs() > 30 {
			return fmt.Errorf("counter source supports at most 30 inputs, circuit has %d", c.NumInputs())
		}
		src = pattern.NewCounter(c.NumInputs())
		if exhaustive := 1 << uint(c.NumInputs()); patterns > exhaustive {
			patterns = exhaustive
		}
	case "weighted":
		src = pattern.NewWeighted(int64(seed), nil)
	case "file":
		if vecPath == "" {
			return fmt.Errorf("-source file requires -vectors <path>")
		}
		f, err := os.Open(vecPath)
		if err != nil {
			return err
		}
		vecs, err := pattern.ParseVectorText(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if len(vecs) > 0 && len(vecs[0]) != c.NumInputs() {
			return fmt.Errorf("vector width %d != %d circuit inputs", len(vecs[0]), c.NumInputs())
		}
		src = pattern.NewVectors(vecs)
		if patterns > len(vecs) {
			patterns = len(vecs)
		}
	default:
		return fmt.Errorf("unknown source %q", source)
	}

	res, err := fsim.RunContext(ctx, c, faults, src, fsim.Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		// On deadline expiry the simulator returns its progress over
		// the completed pattern blocks; report the partial coverage
		// before exiting.
		if res != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			fmt.Printf("partial coverage after %d patterns: %.4f (%d/%d detected)\n",
				res.Patterns, res.Coverage(), len(res.FirstDetect), len(faults))
		}
		return err
	}
	fmt.Printf("patterns applied: %d\n", res.Patterns)
	fmt.Printf("coverage: %.4f (%d/%d detected)\n", res.Coverage(), len(res.FirstDetect), len(faults))

	if curve > 0 {
		fmt.Println("coverage curve:")
		for _, p := range res.Curve(curve) {
			fmt.Printf("  %8d  %.4f\n", p.Patterns, p.Coverage)
		}
	}

	undet := res.Undetected()
	if len(undet) > 0 && hard > 0 {
		co := testability.NewCOP(c, testability.COPOptions{})
		fmt.Printf("hardest undetected faults (of %d):\n", len(undet))
		for i, f := range undet {
			if i >= hard {
				break
			}
			dp := co.DetectProb(f)
			fmt.Printf("  %-24s est. detect prob %.3e, est. patterns for 99%%: %.3g\n",
				f.Name(c), dp, testability.TestLength(dp, 0.99))
		}
	}
	return nil
}
