// Command atpg generates a compacted deterministic stuck-at test set for
// a circuit with the PODEM engine, reports redundant faults, and can
// write the vectors to a file in the plain text format (one 0/1 string
// per line) that cmd/faultsim and the library replay.
//
// Examples:
//
//	atpg -bench testdata/c17.bench
//	atpg -gen rca:width=8 -o rca8.vec -dominance
//	atpg -gen rpr:cones=3,width=12 -verify
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atpg"
	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/pattern"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "input .bench netlist")
		genSpec   = flag.String("gen", "", "generator spec (see internal/cli)")
		outPath   = flag.String("o", "", "write vectors to this file")
		limit     = flag.Int("backtracks", 20000, "PODEM backtrack limit per fault")
		dominance = flag.Bool("dominance", false, "target the dominance-collapsed fault list")
		compact   = flag.Bool("compact", false, "apply static reverse-order compaction to the set")
		verify    = flag.Bool("verify", false, "re-simulate the test set and confirm coverage")
		doLint    = flag.Bool("lint", false, "statically validate the input circuit and reject on lint errors")
		timeout   = flag.Duration("timeout", 0, "abort test generation after this duration (0 = none; expiry exits 3)")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *benchPath, *genSpec, *outPath, *limit, *dominance, *compact, *verify, *doLint); err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		code := cli.ExitCode(err)
		if code == cli.ExitDeadline {
			fmt.Fprintln(os.Stderr, "atpg: -timeout expired; any results above are partial")
		}
		os.Exit(code)
	}
}

func run(ctx context.Context, benchPath, genSpec, outPath string, limit int, dominance, compact, verify, doLint bool) error {
	c, err := cli.LoadCircuitChecked(benchPath, genSpec, doLint, os.Stderr)
	if err != nil {
		return err
	}
	fmt.Println(c)

	var faults []fault.Fault
	if dominance {
		faults = fault.CollapseWithDominance(c)
		fmt.Printf("targets: %d faults (equivalence + dominance collapsed)\n", len(faults))
	} else {
		faults = fault.CollapsedUniverse(c)
		fmt.Printf("targets: %d faults (equivalence collapsed)\n", len(faults))
	}

	ts, err := atpg.GenerateTestsContext(ctx, c, faults, atpg.Options{BacktrackLimit: limit})
	if err != nil {
		// On deadline expiry PODEM returns the test set built so far;
		// report it before exiting so the partial work is not lost.
		if ts != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			done := len(ts.Detected) + len(ts.Redundant) + len(ts.Aborted)
			fmt.Printf("partial test set: %d vectors covering %d/%d processed faults\n",
				len(ts.Vectors), len(ts.Detected), done)
		}
		return err
	}
	if compact {
		before := len(ts.Vectors)
		ts.Vectors = atpg.CompactTests(c, faults, ts.Vectors)
		fmt.Printf("static compaction: %d -> %d vectors\n", before, len(ts.Vectors))
	}
	fmt.Printf("vectors: %d\n", len(ts.Vectors))
	fmt.Printf("detected: %d, redundant: %d, aborted: %d\n",
		len(ts.Detected), len(ts.Redundant), len(ts.Aborted))
	for _, f := range ts.Redundant {
		fmt.Printf("  redundant: %s\n", f.Name(c))
	}
	for _, f := range ts.Aborted {
		fmt.Printf("  aborted:   %s (raise -backtracks?)\n", f.Name(c))
	}

	if verify {
		res, err := fsim.RunContext(ctx, c, faults, pattern.NewVectors(ts.Vectors), fsim.Options{
			MaxPatterns: len(ts.Vectors) + 64,
			DropFaults:  true,
		})
		if err != nil {
			return err
		}
		want := len(faults) - len(ts.Redundant) - len(ts.Aborted)
		fmt.Printf("verification: test set detects %d faults (expected >= %d): %v\n",
			len(res.FirstDetect), want, len(res.FirstDetect) >= want)
	}

	if outPath != "" {
		if err := cli.WriteFile(outPath, func(w io.Writer) error {
			return pattern.WriteVectorText(w, ts.Vectors)
		}); err != nil {
			return err
		}
		fmt.Printf("vectors written to %s\n", outPath)
	}
	return nil
}
