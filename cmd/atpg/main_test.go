package main

import (
	"context"
	"path/filepath"
	"testing"
)

func TestRunBasic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "v.vec")
	if err := run(context.Background(), "", "rca:width=3", out, 5000, false, false, true, false); err != nil {
		t.Errorf("plain: %v", err)
	}
	if err := run(context.Background(), "", "rca:width=3", "", 5000, true, true, true, false); err != nil {
		t.Errorf("dominance+compact: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "", "", "", 100, false, false, false, false); err == nil {
		t.Error("expected error with no circuit")
	}
}
