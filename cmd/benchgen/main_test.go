package main

import (
	"path/filepath"
	"testing"
)

func TestRunFormats(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{"bench", "verilog", "dot"} {
		if err := run("tree:leaves=8", filepath.Join(dir, "out."+f), f, true, false); err != nil {
			t.Errorf("format %s: %v", f, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "bench", false, false); err == nil {
		t.Error("expected error with no spec")
	}
	if err := run("c17", "", "nope", false, false); err == nil {
		t.Error("expected error for unknown format")
	}
	if err := run("bogus", "", "bench", false, false); err == nil {
		t.Error("expected error for bad spec")
	}
}
