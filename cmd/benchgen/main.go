// Command benchgen emits generated benchmark circuits in .bench format.
//
// Examples:
//
//	benchgen -gen tree:seed=7,leaves=200 > tree200.bench
//	benchgen -gen mul:width=8 -o mul8.bench -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/vlog"
)

func main() {
	var (
		genSpec = flag.String("gen", "", "generator spec (see internal/cli)")
		outPath = flag.String("o", "", "output file (default stdout)")
		format  = flag.String("format", "bench", "bench | verilog | dot")
		stats   = flag.Bool("stats", false, "print circuit statistics to stderr")
		doLint  = flag.Bool("lint", false, "statically validate the generated circuit and reject on lint errors")
	)
	flag.Parse()
	if err := run(*genSpec, *outPath, *format, *stats, *doLint); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(genSpec, outPath, format string, stats, doLint bool) error {
	if genSpec == "" {
		return fmt.Errorf("provide -gen <spec>; kinds: c17, tree, dag, cone, parity, rca, cmp, decoder, mul, rpr")
	}
	c, err := cli.Generate(genSpec)
	if err != nil {
		return err
	}
	if doLint {
		if err := cli.LintCircuit(c, os.Stderr); err != nil {
			return err
		}
	}
	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch format {
	case "bench":
		if err := bench.Write(out, c); err != nil {
			return err
		}
	case "verilog":
		if err := vlog.Write(out, c); err != nil {
			return err
		}
	case "dot":
		if err := c.WriteDot(out); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if stats {
		s := c.Stats()
		fmt.Fprintf(os.Stderr, "%s\nstems: %d, fault sites (lines): %d, fanout-free: %v\n",
			c, s.Stems, s.Lines, s.FanoutFree)
	}
	return nil
}
