// Command benchgen emits generated benchmark circuits in .bench format.
//
// Examples:
//
//	benchgen -gen tree:seed=7,leaves=200 > tree200.bench
//	benchgen -gen mul:width=8 -o mul8.bench -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/vlog"
)

func main() {
	var (
		genSpec = flag.String("gen", "", "generator spec (see internal/cli)")
		outPath = flag.String("o", "", "output file (default stdout)")
		format  = flag.String("format", "bench", "bench | verilog | dot")
		stats   = flag.Bool("stats", false, "print circuit statistics to stderr")
		doLint  = flag.Bool("lint", false, "statically validate the generated circuit and reject on lint errors")
	)
	flag.Parse()
	if err := run(*genSpec, *outPath, *format, *stats, *doLint); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(cli.ExitCode(err))
	}
}

func run(genSpec, outPath, format string, stats, doLint bool) error {
	if genSpec == "" {
		return fmt.Errorf("provide -gen <spec>; kinds: c17, tree, dag, cone, parity, rca, cmp, decoder, mul, rpr")
	}
	c, err := cli.Generate(genSpec)
	if err != nil {
		return err
	}
	if doLint {
		if err := cli.LintCircuit(c, os.Stderr); err != nil {
			return err
		}
	}
	switch format {
	case "bench", "verilog", "dot":
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	emit := func(out io.Writer) error {
		switch format {
		case "verilog":
			return vlog.Write(out, c)
		case "dot":
			return c.WriteDot(out)
		}
		return bench.Write(out, c)
	}
	if outPath != "" {
		if err := cli.WriteFile(outPath, emit); err != nil {
			return err
		}
	} else if err := emit(os.Stdout); err != nil {
		return err
	}
	if stats {
		s := c.Stats()
		fmt.Fprintf(os.Stderr, "%s\nstems: %d, fault sites (lines): %d, fanout-free: %v\n",
			c, s.Stems, s.Lines, s.FanoutFree)
	}
	return nil
}
