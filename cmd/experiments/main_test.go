package main

import (
	"context"
	"path/filepath"
	"testing"
)

func TestRunSubset(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "csv")
	if err := run(context.Background(), true, "E2,E7", csv, true); err != nil {
		t.Fatal(err)
	}
}
