// Command experiments regenerates every table and figure of the
// reconstructed evaluation (E1..E8 in DESIGN.md) and prints them as
// aligned ASCII; tables can also be exported as CSV files.
//
// Examples:
//
//	experiments               # full run (what EXPERIMENTS.md records)
//	experiments -quick        # scaled-down run for smoke testing
//	experiments -only E2,E6   # a subset
//	experiments -csv out/     # also write E*.csv files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "scaled-down workloads")
		only   = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E4)")
		csvDir = flag.String("csv", "", "directory to write per-table CSV files")
		doLint = flag.Bool("lint", false, "statically lint the experiment circuits before running")
	)
	flag.Parse()
	if err := run(*quick, *only, *csvDir, *doLint); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(quick bool, only, csvDir string, doLint bool) error {
	cfg := exp.Config{Quick: quick}
	if doLint {
		if err := exp.Preflight(cfg, os.Stderr); err != nil {
			return err
		}
	}
	type entry struct {
		id string
		fn func() (exp.Renderable, error)
	}
	entries := []entry{
		{"E1", func() (exp.Renderable, error) { return exp.E1TestCounts(cfg) }},
		{"E2", func() (exp.Renderable, error) { return exp.E2Insertion(cfg) }},
		{"E3", func() (exp.Renderable, error) { return exp.E3Sweep(cfg) }},
		{"E4", func() (exp.Renderable, error) { return exp.E4Coverage(cfg) }},
		{"E5", func() (exp.Renderable, error) { return exp.E5Curve(cfg) }},
		{"E6", func() (exp.Renderable, error) { return exp.E6Scaling(cfg) }},
		{"E7", func() (exp.Renderable, error) { return exp.E7Reduction(cfg) }},
		{"E8", func() (exp.Renderable, error) { return exp.E8Ablations(cfg) }},
		{"E9", func() (exp.Renderable, error) { return exp.E9ScanTestTime(cfg) }},
	}
	selected := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, e := range entries {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		start := time.Now()
		r, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if err := r.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(%s completed in %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		if csvDir != "" {
			if t, ok := r.(*exp.Table); ok {
				f, err := os.Create(filepath.Join(csvDir, e.id+".csv"))
				if err != nil {
					return err
				}
				if err := t.CSV(f); err != nil {
					f.Close()
					return err
				}
				f.Close()
			}
		}
	}
	return nil
}
