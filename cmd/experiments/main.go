// Command experiments regenerates every table and figure of the
// reconstructed evaluation (E1..E9 in DESIGN.md) and prints them as
// aligned ASCII; tables can also be exported as CSV files.
//
// Examples:
//
//	experiments               # full run (what EXPERIMENTS.md records)
//	experiments -quick        # scaled-down run for smoke testing
//	experiments -only E2,E6   # a subset
//	experiments -csv out/     # also write E*.csv files
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "scaled-down workloads")
		only    = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E4)")
		csvDir  = flag.String("csv", "", "directory to write per-table CSV files")
		doLint  = flag.Bool("lint", false, "statically lint the experiment circuits before running")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = none; expiry exits 3)")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *quick, *only, *csvDir, *doLint); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		code := cli.ExitCode(err)
		if code == cli.ExitDeadline {
			fmt.Fprintln(os.Stderr, "experiments: -timeout expired; experiments printed above are complete, the rest did not run")
		}
		os.Exit(code)
	}
}

func run(ctx context.Context, quick bool, only, csvDir string, doLint bool) error {
	cfg := exp.Config{Quick: quick}
	if doLint {
		if err := exp.Preflight(cfg, os.Stderr); err != nil {
			return err
		}
	}
	selected := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, e := range exp.Experiments() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		start := time.Now()
		r, err := e.Run(ctx, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := r.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if csvDir != "" {
			if t, ok := r.(*exp.Table); ok {
				if err := cli.WriteFile(filepath.Join(csvDir, e.ID+".csv"), func(w io.Writer) error {
					return t.CSV(w)
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
