package repro

import (
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the public API end to end the way the
// README quickstart does: build, analyse, plan, insert, re-simulate.
func TestFacadeQuickstart(t *testing.T) {
	c := AndCone(16)
	faults := Faults(c)

	before, err := Simulate(c, faults, NewLFSR(1), SimOptions{MaxPatterns: 4096, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanTestPoints(c, faults, 2, 2, 1.0/512)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Simulate(plan.Modified, faults, NewLFSR(1), SimOptions{MaxPatterns: 4096, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if after.Coverage() <= before.Coverage() {
		t.Errorf("coverage did not improve: %.4f -> %.4f", before.Coverage(), after.Coverage())
	}
}

func TestFacadeBenchRoundTrip(t *testing.T) {
	c := C17()
	var sb strings.Builder
	if err := WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench(strings.NewReader(sb.String()), "c17")
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumGates() != c.NumGates() {
		t.Errorf("round trip: %d != %d gates", c2.NumGates(), c.NumGates())
	}
}

func TestFacadeCutPlanning(t *testing.T) {
	c := RandomTree(1, 40, TreeOptions{})
	ct, err := ComputeTestCounts(c)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanCuts(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.BaseCost != ct.CircuitTests() {
		t.Errorf("base cost mismatch: %d vs %d", plan.BaseCost, ct.CircuitTests())
	}
	if plan.MaxCost > plan.BaseCost {
		t.Errorf("plan worsened the objective")
	}
	greedy, err := PlanCutsGreedy(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxCost > greedy.MaxCost {
		t.Errorf("DP %d worse than greedy %d", plan.MaxCost, greedy.MaxCost)
	}
}

func TestFacadeATPGAndTestability(t *testing.T) {
	c := C17()
	co := NewCOP(c, COPOptions{})
	if p := co.Controllability(c.Outputs()[0]); p <= 0 || p >= 1 {
		t.Errorf("implausible output probability %f", p)
	}
	sc := NewSCOAP(c)
	if sc.CO[c.Outputs()[0]] != 0 {
		t.Error("PO observability must be 0")
	}
	ts, err := GenerateTests(c, Faults(c), ATPGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, Faults(c), NewVectors(ts.Vectors), SimOptions{MaxPatterns: 64, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Errorf("ATPG set covers %.4f of c17", res.Coverage())
	}
}

func TestFacadeSetCoverReduction(t *testing.T) {
	red, err := ReduceSetCover(SetCover{NumElements: 3, Sets: [][]int{{0, 1}, {1, 2}}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := red.Feasible([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("full cover must be feasible")
	}
}

// TestFacadeLint exercises the static-analysis entry point: c17 is clean,
// a hand-built stuck-constant circuit is rejected, and the untestable
// fault it reports is confirmed redundant by PODEM through the facade.
func TestFacadeLint(t *testing.T) {
	if rep := Lint(C17(), LintOptions{}); rep.HasErrors() {
		t.Errorf("c17 must lint clean: %v", rep.Findings)
	}

	b := NewBuilder("stuck")
	a := b.Input("a")
	bb := b.Input("b")
	na := b.NotGate("na", a)
	k := b.AndGate("k", a, na)
	z := b.OrGate("z", bb, k)
	b.MarkOutput(z)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("built circuit must validate: %v", err)
	}
	rep := Lint(c, LintOptions{})
	if !rep.HasErrors() {
		t.Fatalf("expected an error-severity finding: %v", rep.Findings)
	}
	un := rep.Untestable()
	if len(un) == 0 {
		t.Fatal("expected an untestable fault")
	}
	for _, f := range un {
		res, err := GenerateTest(c, f, ATPGOptions{BacktrackLimit: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status.String() != "redundant" {
			t.Errorf("fault %s: PODEM says %s, lint claims untestable", f.Name(c), res.Status)
		}
	}
}
